"""Crash-point explorer acceptance tests (deterministic, seeded)."""

import pytest

from repro.faults.crashpoints import (
    DEFAULT_OPS,
    EV_PERSIST,
    EV_STORE,
    CrashPointExplorer,
    ShadowImage,
    TapeRecorder,
)
from repro.nvmm.config import CACHELINE_SIZE

SHORT_OPS = (
    ("create", "/a"),
    ("append", "/a", 1200),
    ("rename", "/a", "/b"),
    ("unlink", "/b"),
)


class TestShadowImage:
    def test_store_is_volatile_until_persist(self):
        shadow = ShadowImage(b"\0" * (4 * CACHELINE_SIZE))
        shadow.apply((EV_STORE, 10, b"xyz"))
        assert shadow.crash_image()[10:13] == b"\0\0\0"
        assert 0 in shadow.dirty
        shadow.apply((EV_PERSIST, 10, b"xyz"))
        assert shadow.crash_image()[10:13] == b"xyz"
        assert not shadow.dirty

    def test_eviction_overlays_dirty_line(self):
        shadow = ShadowImage(b"\0" * (4 * CACHELINE_SIZE))
        shadow.apply((EV_STORE, CACHELINE_SIZE, b"q" * 8))
        image = shadow.crash_image(evict_lines=(1,))
        assert image[CACHELINE_SIZE:CACHELINE_SIZE + 8] == b"q" * 8
        # The un-evicted view is unchanged.
        assert shadow.crash_image()[CACHELINE_SIZE] == 0

    def test_store_spanning_lines(self):
        shadow = ShadowImage(b"\0" * (4 * CACHELINE_SIZE))
        data = bytes(range(100))
        shadow.apply((EV_STORE, CACHELINE_SIZE - 20, data))
        assert sorted(shadow.dirty) == [0, 1, 2]
        image = shadow.crash_image(evict_lines=(0, 1, 2))
        assert image[CACHELINE_SIZE - 20:CACHELINE_SIZE + 80] == data


class TestTapeRecorder:
    def test_disabled_recorder_drops_events(self):
        tape = TapeRecorder()
        tape.on_cached_write(0, b"a")
        tape.enabled = False
        tape.on_persist(0, b"a")
        tape.on_fence(None)
        assert len(tape.events) == 1 and not tape.boundaries


class TestExplorerAcceptance:
    """Every flush/fence boundary of the mixed sequence recovers clean."""

    @pytest.mark.parametrize("fs_kind", ["pmfs", "hinfs"])
    def test_default_ops_all_states_consistent(self, fs_kind):
        explorer = CrashPointExplorer(fs_kind, seed=0,
                                      eviction_samples_per_op=64)
        report = explorer.explore(DEFAULT_OPS)
        report.raise_if_failed()
        assert report.events > 0
        assert report.boundaries > 0
        # The sequence exercises the op kinds the issue names.
        kinds = {op[0] for op in DEFAULT_OPS}
        assert {"create", "append", "rename", "unlink"} <= kinds
        # Every op whose window produced tape events drew its full quota
        # of sampled eviction subsets; ops that emit no events (a PMFS
        # fsync is a bare fence) legitimately draw zero.
        assert len(report.eviction_draws) == len(DEFAULT_OPS)
        for op_index, draws in report.eviction_draws.items():
            assert draws in (0, 64), (op_index, draws)
        assert sum(report.eviction_draws.values()) >= 64 * 10

    def test_same_seed_same_exploration(self):
        a = CrashPointExplorer("pmfs", seed=7,
                               eviction_samples_per_op=8).explore(SHORT_OPS)
        b = CrashPointExplorer("pmfs", seed=7,
                               eviction_samples_per_op=8).explore(SHORT_OPS)
        a.raise_if_failed()
        assert (a.events, a.boundaries, a.states_checked, a.states_deduped,
                a.eviction_draws) == (b.events, b.boundaries,
                                      b.states_checked, b.states_deduped,
                                      b.eviction_draws)

    def test_rejects_unknown_fs(self):
        with pytest.raises(ValueError):
            CrashPointExplorer("ext4")


class TestTornWrites:
    """Sub-cacheline (8-byte word) crash states."""

    def test_crash_image_applies_word_mask_to_dirty_line(self):
        shadow = ShadowImage(b"\0" * (2 * CACHELINE_SIZE))
        shadow.apply((EV_STORE, 0, b"\xff" * CACHELINE_SIZE))
        image = shadow.crash_image(torn={0: 0b101})  # words 0 and 2
        assert image[0:8] == b"\xff" * 8
        assert image[8:16] == b"\0" * 8
        assert image[16:24] == b"\xff" * 8
        assert image[24:CACHELINE_SIZE] == b"\0" * 40
        # The untorn view is untouched: stores stay volatile.
        assert shadow.crash_image()[0] == 0

    def test_torn_persist_image_tears_the_next_flush(self):
        from repro.faults.crashpoints import EV_PERSIST

        shadow = ShadowImage(b"\0" * (2 * CACHELINE_SIZE))
        event = (EV_PERSIST, 4, b"\xaa" * 20)  # words 0..2 of the line
        # Bit i selects the i-th word *overlapping the event*; unchosen
        # words keep their old persistent bytes entirely.
        image = shadow.torn_persist_image(event, 0b110)
        assert image[0:8] == b"\0" * 8  # word 0 not chosen
        assert image[8:16] == b"\xaa" * 8
        assert image[16:24] == b"\xaa" * 8
        assert image[24:CACHELINE_SIZE] == b"\0" * 40
        with pytest.raises(ValueError):
            shadow.torn_persist_image((EV_STORE, 0, b"x"), 1)

    def test_persist_word_count(self):
        from repro.faults.crashpoints import EV_PERSIST

        assert ShadowImage.persist_word_count((EV_PERSIST, 0, b"x" * 8)) == 1
        assert ShadowImage.persist_word_count((EV_PERSIST, 4, b"x" * 8)) == 2
        assert ShadowImage.persist_word_count((EV_PERSIST, 0, b"")) == 0
        assert ShadowImage.persist_word_count((EV_STORE, 0, b"x")) == 0

    @pytest.mark.parametrize("fs_kind", ["pmfs", "hinfs"])
    def test_torn_states_sampled_and_consistent(self, fs_kind):
        explorer = CrashPointExplorer(fs_kind, seed=0,
                                      eviction_samples_per_op=8,
                                      torn_samples_per_op=8)
        report = explorer.explore(SHORT_OPS)
        report.raise_if_failed()
        assert sum(report.torn_draws.values()) > 0

    @pytest.mark.parametrize("fs_kind", ["pmfs", "hinfs"])
    def test_negative_control_checksums_off_catches_torn_journal(
            self, fs_kind):
        """With entry CRCs disabled, recovery replays garbage undo
        records reconstructed from torn journal lines -- the explorer
        must catch the resulting corruption.  The same exploration with
        checksums on is the positive control above."""
        ops = DEFAULT_OPS[:5]
        clean = CrashPointExplorer(fs_kind, seed=0,
                                   eviction_samples_per_op=16,
                                   torn_samples_per_op=16,
                                   journal_checksums=True).explore(ops)
        clean.raise_if_failed()
        broken = CrashPointExplorer(fs_kind, seed=0,
                                    eviction_samples_per_op=16,
                                    torn_samples_per_op=16,
                                    journal_checksums=False).explore(ops)
        assert broken.failures, "torn journal replay went undetected"
        assert any(v.torn is not None for v in broken.failures)

"""Tests for the unified RetryPolicy primitive."""

import pytest

from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.faults.policy import RetryPolicy


def _ctx():
    return ExecContext(SimEnv(), "t")


def test_budget_is_one_based_and_bounded():
    policy = RetryPolicy(max_retries=2)
    assert policy.allows(1)
    assert policy.allows(2)
    assert not policy.allows(3)
    assert not RetryPolicy(max_retries=0).allows(1)


def test_backoff_is_exponential_without_jitter():
    policy = RetryPolicy(base_backoff_ns=1_000, multiplier=2.0,
                         jitter_frac=0.0)
    assert [policy.backoff_ns(n) for n in (1, 2, 3)] == [1_000, 2_000, 4_000]
    with pytest.raises(ValueError):
        policy.backoff_ns(0)


def test_jitter_is_additive_and_seeded():
    def schedule(seed):
        policy = RetryPolicy(base_backoff_ns=1_000, multiplier=2.0,
                             jitter_frac=0.5, seed=seed)
        return [policy.backoff_ns(n) for n in (1, 2, 3)]

    first, second = schedule(7), schedule(7)
    assert first == second  # same seed, same schedule
    floor = [1_000, 2_000, 4_000]
    for got, base in zip(first, floor):
        assert base <= got <= int(base * 1.5)
    assert schedule(8) != first


def test_constructor_validates_knobs():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(base_backoff_ns=-1)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter_frac=1.5)


def test_breaker_trips_after_consecutive_exhaustions():
    policy = RetryPolicy(max_retries=0, breaker_threshold=3,
                         breaker_cooldown_ns=1_000_000)
    for _ in range(2):
        policy.record_failure(now_ns=0)
    assert not policy.circuit_open(0)
    policy.record_failure(now_ns=0)
    assert policy.circuit_open(0)
    assert policy.breaker_trips == 1
    # Cooldown expiry half-opens the circuit ...
    assert not policy.circuit_open(1_000_000)
    # ... and the consecutive count restarts from zero.
    policy.record_failure(now_ns=1_000_000)
    assert not policy.circuit_open(1_000_000)


def test_breaker_reopens_after_cooldown_when_failures_continue():
    policy = RetryPolicy(max_retries=0, breaker_threshold=2,
                         breaker_cooldown_ns=1_000)
    policy.record_failure(now_ns=0)
    policy.record_failure(now_ns=0)
    assert policy.circuit_open(500)
    # Cooldown expiry half-opens the circuit with a fresh budget of
    # consecutive failures ...
    assert not policy.circuit_open(1_000)
    policy.record_failure(now_ns=1_000)
    assert not policy.circuit_open(1_000)
    # ... but sustained failure trips it again, for a full new cooldown
    # window anchored at the re-tripping failure.
    policy.record_failure(now_ns=1_200)
    assert policy.breaker_trips == 2
    assert policy.circuit_open(2_100)
    assert not policy.circuit_open(2_200)


def test_success_closes_the_circuit():
    policy = RetryPolicy(max_retries=0, breaker_threshold=1)
    policy.record_failure(now_ns=0)
    assert policy.circuit_open(0)
    policy.record_success()
    assert not policy.circuit_open(0)


def test_run_retries_then_succeeds_charging_backoff():
    policy = RetryPolicy(max_retries=3, base_backoff_ns=1_000,
                         multiplier=2.0, jitter_frac=0.0)
    ctx = _ctx()
    calls = []

    def flaky():
        calls.append(None)
        if len(calls) < 3:
            raise OSError("transient")
        return "ok"

    assert policy.run(ctx, flaky, retryable=OSError) == "ok"
    assert len(calls) == 3
    assert policy.retries == 2
    assert ctx.now == 1_000 + 2_000  # two charged backoffs


def test_run_exhausts_budget_and_raises():
    policy = RetryPolicy(max_retries=1, base_backoff_ns=500,
                         jitter_frac=0.0)
    ctx = _ctx()

    def always():
        raise OSError("dead")

    with pytest.raises(OSError):
        policy.run(ctx, always, retryable=OSError)
    assert policy.gave_up == 1
    assert ctx.now == 500  # only the allowed retry's backoff was charged


def test_run_does_not_swallow_unrelated_exceptions():
    policy = RetryPolicy(max_retries=5)
    with pytest.raises(KeyError):
        policy.run(_ctx(), lambda: (_ for _ in ()).throw(KeyError("x")),
                   retryable=OSError)
    assert policy.retries == 0


def test_run_fails_fast_while_circuit_open():
    policy = RetryPolicy(max_retries=2, base_backoff_ns=1_000,
                         jitter_frac=0.0, breaker_threshold=1)
    ctx = _ctx()

    def always():
        raise OSError("dead")

    with pytest.raises(OSError):
        policy.run(ctx, always, retryable=OSError)
    spent = ctx.now
    assert policy.circuit_open(ctx.now)
    # Open circuit: one bare attempt, no backoff time consumed.
    with pytest.raises(OSError):
        policy.run(ctx, always, retryable=OSError)
    assert ctx.now == spent

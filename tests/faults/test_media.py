"""NVMM media faults: EIO propagation, retries, degradation, errseq."""

import pytest

from repro.core import HiNFS, HiNFSConfig
from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.engine.scheduler import Scheduler
from repro.faults.errseq import ErrseqMap
from repro.faults.media import MediaFaultModel
from repro.fs import flags as f
from repro.fs.errors import FSError, MediaError, ReadOnly
from repro.fs.pmfs.layout import block_addr
from repro.fs.pmfs.pmfs import PMFS
from repro.fs.vfs import VFS
from repro.nvmm.config import CACHELINE_SIZE, NVMMConfig
from repro.nvmm.device import NVMMDevice


def build_pmfs(threshold=5, seed=0):
    env = SimEnv()
    config = NVMMConfig()
    device = NVMMDevice(env, config, 8 << 20)
    fs = PMFS(env, device, config, journal_blocks=8, inode_count=64)
    vfs = VFS(env, fs, config, media_error_threshold=threshold)
    model = device.attach_faults(MediaFaultModel(seed=seed))
    return env, config, device, fs, vfs, ExecContext(env, "t"), model


def build_hinfs(threshold=5, seed=0):
    env = SimEnv()
    config = NVMMConfig()
    device = NVMMDevice(env, config, 8 << 20)
    # Eager checker off: every write is buffered, so writeback (not the
    # write itself) is what meets the bad media.
    fs = HiNFS(env, device, config, journal_blocks=8, inode_count=64,
               hconfig=HiNFSConfig(buffer_bytes=256 << 10,
                                   enable_eager_checker=False))
    vfs = VFS(env, fs, config, media_error_threshold=threshold)
    model = device.attach_faults(MediaFaultModel(seed=seed))
    return env, config, device, fs, vfs, ExecContext(env, "t"), model


def data_line(fs, ino, file_block=0, line_in_block=0):
    """Cacheline index backing ``file_block`` of ``ino`` in NVMM."""
    nvmm_block = fs._maps[ino].get(file_block)
    assert nvmm_block is not None
    return block_addr(nvmm_block) // CACHELINE_SIZE + line_in_block


class TestSynchronousEIO:
    def test_read_of_poisoned_line_raises(self):
        env, config, device, fs, vfs, ctx, model = build_pmfs()
        fd = vfs.open(ctx, "/x", f.O_CREAT | f.O_RDWR)
        vfs.pwrite(ctx, fd, 0, b"a" * 8192)
        model.poison_line(data_line(fs, vfs._files[fd].ino))
        with pytest.raises(MediaError):
            vfs.pread(ctx, fd, 0, 100)
        assert model.read_errors == 1
        # The second block of the file is on good media: still served.
        assert vfs.pread(ctx, fd, 4096, 64) == b"a" * 64

    def test_write_to_poisoned_line_raises(self):
        env, config, device, fs, vfs, ctx, model = build_pmfs()
        fd = vfs.open(ctx, "/x", f.O_CREAT | f.O_RDWR)
        vfs.pwrite(ctx, fd, 0, b"a" * 4096)
        model.poison_line(data_line(fs, vfs._files[fd].ino))
        with pytest.raises(MediaError):
            vfs.pwrite(ctx, fd, 0, b"b" * 64)
        assert vfs.media_errors == 1

    def test_hinfs_fsync_hits_bad_writeback_target(self):
        env, config, device, fs, vfs, ctx, model = build_hinfs()
        fd = vfs.open(ctx, "/x", f.O_CREAT | f.O_RDWR)
        vfs.pwrite(ctx, fd, 0, b"a" * 4096)  # buffered in DRAM
        model.poison_line(data_line(fs, vfs._files[fd].ino))
        with pytest.raises(MediaError):
            vfs.fsync(ctx, fd)
        assert vfs.media_errors == 1

    def test_error_carries_faulting_lines(self):
        env, config, device, fs, vfs, ctx, model = build_pmfs()
        fd = vfs.open(ctx, "/x", f.O_CREAT | f.O_RDWR)
        vfs.pwrite(ctx, fd, 0, b"a" * 4096)
        line = data_line(fs, vfs._files[fd].ino)
        model.poison_line(line)
        with pytest.raises(MediaError) as excinfo:
            vfs.pread(ctx, fd, 0, 64)
        assert line in excinfo.value.lines


class TestTransientRetry:
    def test_transient_fault_retried_with_backoff(self):
        env = SimEnv()
        config = NVMMConfig()
        device = NVMMDevice(env, config, 1 << 20)
        model = device.attach_faults(MediaFaultModel())
        ctx = ExecContext(env, "t")
        model.inject_transient(0, failures=2)
        before = ctx.now
        device.write_persistent(ctx, 0, b"z" * 64)
        # Two retries, exponential backoff: 1x + 2x the base backoff.
        assert model.retries == 2
        backoff = config.media_retry_backoff_ns * 3
        assert ctx.now - before >= backoff
        assert device.mem.read(0, 64) == b"z" * 64
        assert not model.bad_lines

    def test_exhausted_retries_mark_line_bad(self):
        env = SimEnv()
        config = NVMMConfig()
        device = NVMMDevice(env, config, 1 << 20)
        model = device.attach_faults(MediaFaultModel())
        ctx = ExecContext(env, "t")
        model.inject_transient(0, failures=config.media_retry_limit + 1)
        with pytest.raises(MediaError):
            device.write_persistent(ctx, 0, b"z" * 64)
        assert 0 in model.bad_lines
        # Nothing became durable: the guard runs before the data plane.
        assert device.mem.persistent_snapshot()[:64] == b"\0" * 64


class TestRemountReadOnly:
    def test_threshold_flips_mount_read_only(self):
        env, config, device, fs, vfs, ctx, model = build_pmfs(threshold=3)
        fd = vfs.open(ctx, "/x", f.O_CREAT | f.O_RDWR)
        vfs.pwrite(ctx, fd, 0, b"a" * 8192)
        model.poison_line(data_line(fs, vfs._files[fd].ino))
        for _ in range(3):
            with pytest.raises(MediaError):
                vfs.pread(ctx, fd, 0, 64)
        assert vfs.read_only
        with pytest.raises(ReadOnly):
            vfs.pwrite(ctx, fd, 4096, b"b")
        with pytest.raises(ReadOnly):
            vfs.open(ctx, "/new", f.O_CREAT | f.O_RDWR)
        with pytest.raises(ReadOnly):
            vfs.rename(ctx, "/x", "/y")
        with pytest.raises(ReadOnly):
            vfs.unlink(ctx, "/x")
        # Reads of good media are still served on the read-only mount.
        assert vfs.pread(ctx, fd, 4096, 64) == b"a" * 64
        assert vfs.stat(ctx, "/x").size == 8192

    def test_degradation_does_not_crash_the_scheduler(self):
        env, config, device, fs, vfs, ctx, model = build_pmfs(threshold=2)
        setup = ExecContext(env, "setup")
        fd = vfs.open(setup, "/x", f.O_CREAT | f.O_RDWR)
        vfs.pwrite(setup, fd, 0, b"a" * 4096)
        model.poison_line(data_line(fs, vfs._files[fd].ino))

        outcomes = []

        def body(tctx, name):
            my_fd = vfs.open(tctx, "/x", f.O_RDWR)
            for _ in range(4):
                try:
                    vfs.pwrite(tctx, my_fd, 0, b"b" * 64)
                    outcomes.append((name, "ok"))
                except FSError as exc:
                    outcomes.append((name, type(exc).__name__))
            yield

        sched = Scheduler(env)
        for i in range(2):
            name = "w%d" % i
            sched.spawn(name, lambda c, n=name: body(c, n))
        sched.run()
        assert vfs.read_only
        kinds = {kind for _, kind in outcomes}
        assert "MediaError" in kinds and "ReadOnly" in kinds

    def test_failed_journal_recovery_mounts_read_only(self):
        env, config, device, fs, vfs, ctx, model = build_pmfs()
        vfs.write_file(ctx, "/keep", b"k" * 4096, sync=True)
        vfs.unmount(ctx)
        # Poison the journal header: recovery cannot even read the ring.
        model.poison_line(fs.journal.base_addr // CACHELINE_SIZE)
        device.crash()
        recovered = PMFS.mount(env, device, config)
        assert recovered.degraded_reason is not None
        vfs2 = VFS(env, recovered, config)
        assert vfs2.read_only
        assert vfs2.read_file(ctx, "/keep") == b"k" * 4096
        with pytest.raises(ReadOnly):
            vfs2.write_file(ctx, "/nope", b"x")


class TestScatter:
    def test_seeded_scatter_is_deterministic_and_sorted(self):
        a = MediaFaultModel(seed=3).scatter(5, 1000)
        b = MediaFaultModel(seed=3).scatter(5, 1000)
        assert a == b == sorted(set(a))
        assert len(a) == 5
        assert all(0 <= line < 1000 for line in a)
        assert MediaFaultModel(seed=4).scatter(5, 1000) != a

    def test_zero_lines_returns_empty(self):
        assert MediaFaultModel().scatter(0, 100) == []
        assert MediaFaultModel().scatter(0, 0) == []

    def test_rejects_more_lines_than_region(self):
        with pytest.raises(ValueError):
            MediaFaultModel().scatter(11, 10)

    def test_rejects_negative_arguments(self):
        with pytest.raises(ValueError):
            MediaFaultModel().scatter(-1, 10)
        with pytest.raises(ValueError):
            MediaFaultModel().scatter(1, -1)


class TestErrseq:
    def test_map_exactly_once_per_cursor(self):
        errs = ErrseqMap()
        c1 = errs.sample(7)
        errs.record(7)
        hit, c1 = errs.check(7, c1)
        assert hit
        hit, c1 = errs.check(7, c1)
        assert not hit
        assert errs.pending() == [7]

    def test_deferred_writeback_error_reported_once_per_fd(self):
        env, config, device, fs, vfs, ctx, model = build_hinfs()
        fd1 = vfs.open(ctx, "/x", f.O_CREAT | f.O_RDWR)
        fd2 = vfs.open(ctx, "/x", f.O_RDWR)
        vfs.pwrite(ctx, fd1, 0, b"a" * 4096)  # buffered, acknowledged
        ino = vfs._files[fd1].ino
        model.poison_line(data_line(fs, ino))
        # Background demand reclaim meets the bad line: the error is
        # recorded against the inode, nobody gets an exception.
        fs.writeback.demand_reclaim(ctx)
        assert env.stats.count("hinfs_wb_media_errors") == 1
        assert fs.wb_err.pending() == [ino]
        # fd1: the next fsync reports EIO exactly once...
        with pytest.raises(MediaError):
            vfs.fsync(ctx, fd1)
        vfs.fsync(ctx, fd1)  # ...and only once.
        # fd2 predates the error too: its close reports it (fd is gone
        # either way, like filp_close).
        with pytest.raises(MediaError):
            vfs.close(ctx, fd2)
        assert fd2 not in vfs._files
        # A descriptor opened after the error samples the current
        # sequence and reports nothing.
        fd3 = vfs.open(ctx, "/x", f.O_RDWR)
        vfs.fsync(ctx, fd3)
        vfs.close(ctx, fd3)

    def test_async_error_counts_toward_remount_ro(self):
        env, config, device, fs, vfs, ctx, model = build_hinfs(threshold=1)
        fd = vfs.open(ctx, "/x", f.O_CREAT | f.O_RDWR)
        vfs.pwrite(ctx, fd, 0, b"a" * 4096)
        model.poison_line(data_line(fs, vfs._files[fd].ino))
        fs.writeback.demand_reclaim(ctx)
        assert vfs.read_only
        with pytest.raises(ReadOnly):
            vfs.pwrite(ctx, fd, 4096, b"b")

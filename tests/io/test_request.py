"""Geometry and iovec semantics of the kiocb-style IORequest."""

import pytest

from repro.io import OP_READ, OP_WRITE, IORequest


def test_unknown_op_rejected():
    with pytest.raises(ValueError):
        IORequest(1, "append", 2, [b"x"], 0)


def test_write_geometry():
    req = IORequest(1, OP_WRITE, 7, [b"abc", b"", b"defg"], 100)
    assert req.total_bytes == 7
    assert req.end_offset == 107
    assert list(req.fragments()) == [(100, b"abc"), (103, b""), (103, b"defg")]
    assert req.coalesce() == b"abcdefg"


def test_write_iovecs_are_snapshotted_as_bytes():
    buf = bytearray(b"live")
    req = IORequest(1, OP_WRITE, 7, [buf], 0)
    buf[:] = b"dead"
    assert req.coalesce() == b"live"


def test_single_fragment_coalesce_returns_fragment():
    req = IORequest(1, OP_WRITE, 7, [b"only"], 0)
    assert req.coalesce() is req.iovecs[0]


def test_read_geometry_and_scatter():
    req = IORequest(2, OP_READ, 7, [3, 4, 5], 10)
    assert req.total_bytes == 12
    assert req.end_offset == 22
    assert req.scatter(b"aaabbbbccccc") == [b"aaa", b"bbbb", b"ccccc"]


def test_scatter_short_read_fills_in_order():
    # readv semantics: earlier iovecs fill completely before later ones.
    req = IORequest(2, OP_READ, 7, [3, 4, 5], 0)
    assert req.scatter(b"aaab") == [b"aaa", b"b", b""]
    assert req.scatter(b"") == [b"", b"", b""]


def test_ops_reject_wrong_direction():
    write = IORequest(1, OP_WRITE, 7, [b"x"], 0)
    read = IORequest(2, OP_READ, 7, [1], 0)
    with pytest.raises(ValueError):
        write.scatter(b"x")
    with pytest.raises(ValueError):
        read.coalesce()
    with pytest.raises(ValueError):
        list(read.fragments())


def test_syscall_defaults_to_op():
    assert IORequest(1, OP_WRITE, 7, [b"x"], 0).syscall == "write"
    assert IORequest(1, OP_READ, 7, [1], 0, syscall="preadv").syscall == "preadv"

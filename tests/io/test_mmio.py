"""Tests for the library-mode mmap data plane (repro.io.mmio).

The properties under test, in rough order of importance:

- **zero syscalls**: once a ``MAP_ATOMIC`` mapping exists, its
  load/store/msync ops never touch the syscall ledger;
- **epoch atomicity**: a crash recovers the pre-epoch or post-epoch
  image under both the undo and redo policies, never a blend;
- **POSIX coherence**: descriptor I/O on a mapped file is routed
  through the mapping, so reads see staged stores and fsync commits
  the open epoch.
"""

import pytest

from repro.engine.stats import CAT_WRITE_ACCESS
from repro.faults.mmiofault import MmioFaultInjector
from repro.fs import flags as f
from repro.fs.errors import InvalidArgument, MediaError
from repro.io import mmio
from repro.nvmm.config import CACHELINE_SIZE

from tests.fs.conftest import PmfsRig


@pytest.fixture()
def rig():
    return PmfsRig()


def amap(rig, path, data=b"x" * 8192, **kwargs):
    """Create a file and map it MAP_ATOMIC; returns (fd, mapping)."""
    rig.vfs.write_file(rig.ctx, path, data)
    fd = rig.vfs.open(rig.ctx, path, f.O_RDWR)
    region = rig.vfs.mmap(rig.ctx, fd, flags=f.MAP_ATOMIC, **kwargs)
    return fd, region


def dirty_store_lines(rig, region):
    """Line indices of the mapping's in-place (undo) stores that are
    still sitting dirty in the CPU cache."""
    dirty = set(rig.device.mem.dirty_line_indices())
    want = set()
    for _foff, addr, length in region._dirty_ranges:
        first = addr // CACHELINE_SIZE
        last = (addr + length - 1) // CACHELINE_SIZE
        want.update(range(first, last + 1))
    return sorted(want & dirty)


# -- the tentpole property: zero syscall charges --------------------------


def test_mapped_ops_charge_zero_syscall_time(rig):
    _fd, region = amap(rig, "/m")
    ledger_before = dict(rig.env.stats.syscall_time_ns)
    t0 = rig.ctx.now
    for i in range(32):
        region.store(rig.ctx, i * 64, b"Z" * 64)
        region.load(rig.ctx, i * 64, 64)
    region.msync(rig.ctx)
    # Work happened (virtual time moved, ops were counted)...
    assert rig.ctx.now > t0
    assert rig.env.stats.count("mmio_stores") == 32
    assert rig.env.stats.count("mmio_loads") == 32
    assert rig.env.stats.count("mmio_epochs_committed") == 1
    # ...but the syscall ledger never moved: library mode, no kernel.
    assert dict(rig.env.stats.syscall_time_ns) == ledger_before


def test_mmio_time_lands_in_the_mmio_layer(rig):
    _fd, region = amap(rig, "/m")
    rig.env.enable_tracing(capacity=256)
    region.store(rig.ctx, 0, b"hello")
    region.msync(rig.ctx)
    assert rig.env.stats.layer_time_ns.get("mmio", 0) > 0
    names = [sp.name for sp in rig.env.trace.spans()]
    assert "mmio.store" in names and "mmio.msync" in names


# -- undo policy ----------------------------------------------------------


def test_undo_msync_is_durable(rig):
    _fd, region = amap(rig, "/m", policy="undo")
    region.store(rig.ctx, 100, b"DURABLE")
    region.msync(rig.ctx)
    rig.crash_and_remount()
    assert rig.vfs.read_file(rig.ctx, "/m")[100:107] == b"DURABLE"


def test_undo_uncommitted_epoch_rolls_back(rig):
    """In-place stores that leaked to media (cache eviction) before the
    epoch committed must be rolled back from the undo log."""
    _fd, region = amap(rig, "/m", data=b"a" * 8192, policy="undo")
    region.store(rig.ctx, 0, b"TORN" * 16)
    region.store(rig.ctx, 4096, b"TORN" * 16)
    evict = dirty_store_lines(rig, region)
    assert evict, "undo stores should sit dirty in the cache"
    rig.crash_and_remount(evict_lines=evict)
    # The evicted new bytes reached media, but recovery restored the
    # pre-epoch image from the undo entries.
    assert rig.env.stats.count("mmio_logs_recovered") == 1
    assert rig.env.stats.count("mmio_recovered_rollbacks") == 1
    data = rig.vfs.read_file(rig.ctx, "/m")
    assert data == b"a" * 8192


def test_undo_partial_eviction_still_rolls_back(rig):
    """Only SOME of the epoch's stores reached media: recovery must
    still produce the clean pre-epoch image (no blend)."""
    _fd, region = amap(rig, "/m", data=b"b" * 8192, policy="undo")
    region.store(rig.ctx, 0, b"X" * 64)
    region.store(rig.ctx, 4096, b"Y" * 64)
    evict = dirty_store_lines(rig, region)[:1]
    rig.crash_and_remount(evict_lines=evict)
    assert rig.vfs.read_file(rig.ctx, "/m") == b"b" * 8192


# -- redo policy ----------------------------------------------------------


def test_redo_store_stages_in_overlay_until_msync(rig):
    _fd, region = amap(rig, "/m", data=b"c" * 4096, policy="redo")
    region.store(rig.ctx, 10, b"STAGED")
    # The mapping's own loads see the overlay...
    assert region.load(rig.ctx, 10, 6) == b"STAGED"
    # ...and so does descriptor I/O (routed through the mapping).
    assert rig.vfs.read_file(rig.ctx, "/m")[10:16] == b"STAGED"
    # But in-place NVMM is untouched until the commit:
    rig.crash_and_remount()
    assert rig.vfs.read_file(rig.ctx, "/m") == b"c" * 4096


def test_redo_msync_is_durable(rig):
    _fd, region = amap(rig, "/m", data=b"c" * 4096, policy="redo")
    region.store(rig.ctx, 10, b"STAGED")
    region.msync(rig.ctx)
    rig.crash_and_remount()
    assert rig.vfs.read_file(rig.ctx, "/m")[10:16] == b"STAGED"


def test_redo_committed_epoch_reapplies_after_crash_mid_apply(rig):
    """Crash between the commit word and the in-place apply: recovery
    must finish the apply from the redo entries."""
    _fd, region = amap(rig, "/m", data=b"d" * 8192, policy="redo")
    region.store(rig.ctx, 0, b"NEW" * 100)
    region.store(rig.ctx, 5000, b"TAIL")
    # Commit the epoch by hand -- entries are already persistent -- and
    # crash before any in-place apply runs.
    region.log.commit(rig.ctx, region.log.committed + 1)
    rig.crash_and_remount()
    assert rig.env.stats.count("mmio_recovered_applies") == 1
    data = rig.vfs.read_file(rig.ctx, "/m")
    assert data[:300] == b"NEW" * 100
    assert data[5000:5004] == b"TAIL"
    assert data[300:5000] == b"d" * 4700


# -- auto policy and log pressure -----------------------------------------


def test_auto_policy_tracks_previous_epoch_mix(rig):
    _fd, region = amap(rig, "/m", policy="auto")
    # First epoch defaults to undo (no history).
    region.store(rig.ctx, 0, b"w")
    assert region._epoch_policy == mmio.POLICY_UNDO
    region.msync(rig.ctx)
    # That epoch was store-heavy (1 store, 0 loads) -> next goes redo.
    region.store(rig.ctx, 0, b"w")
    assert region._epoch_policy == mmio.POLICY_REDO
    for _ in range(3):
        region.load(rig.ctx, 0, 1)
    region.msync(rig.ctx)
    # Read-heavy epoch -> back to undo.
    region.store(rig.ctx, 0, b"w")
    assert region._epoch_policy == mmio.POLICY_UNDO
    region.msync(rig.ctx)


def test_log_full_autocommits_and_retries(rig):
    _fd, region = amap(rig, "/m", data=b"e" * 8192, policy="undo",
                       log_blocks=1)
    # Each 2048-byte store costs 33 log lines; a 64-line block fills
    # after the second store, forcing an automatic epoch commit.
    for i in range(4):
        region.store(rig.ctx, i * 2048, b"F" * 2048)
    assert rig.env.stats.count("mmio_autocommits") >= 1
    region.msync(rig.ctx)
    rig.crash_and_remount()
    assert rig.vfs.read_file(rig.ctx, "/m") == b"F" * 8192


def test_oversized_single_entry_is_rejected(rig):
    _fd, region = amap(rig, "/m")
    with pytest.raises(InvalidArgument):
        region.log.append(rig.ctx, mmio.KIND_UNDO, 1, 0, b"x" * 4096)


# -- syscall routing (POSIX coherence) ------------------------------------


def test_pwrite_on_mapped_file_routes_through_mapping(rig):
    fd, region = amap(rig, "/m", data=b"f" * 4096, policy="redo")
    routed = rig.env.stats.count("mmio_routed")
    rig.vfs.pwrite(rig.ctx, fd, 50, b"VIA-FD")
    assert rig.env.stats.count("mmio_routed") == routed + 1
    # The write joined the mapping's epoch: visible to loads, staged
    # (not yet in place) like any other redo store.
    assert region.load(rig.ctx, 50, 6) == b"VIA-FD"
    rig.crash_and_remount()
    assert rig.vfs.read_file(rig.ctx, "/m") == b"f" * 4096


def test_fsync_on_mapped_file_commits_the_epoch(rig):
    fd, region = amap(rig, "/m", data=b"g" * 4096, policy="redo")
    region.store(rig.ctx, 0, b"COMMIT-ME")
    epochs = rig.env.stats.count("mmio_epochs_committed")
    rig.vfs.fsync(rig.ctx, fd)
    assert rig.env.stats.count("mmio_epochs_committed") == epochs + 1
    rig.crash_and_remount()
    assert rig.vfs.read_file(rig.ctx, "/m")[:9] == b"COMMIT-ME"


def test_read_on_mapped_file_sees_staged_stores(rig):
    fd, region = amap(rig, "/m", data=b"h" * 4096, policy="redo")
    region.store(rig.ctx, 4090, b"TAILBYTES")  # extends the file
    assert rig.vfs.stat(rig.ctx, "/m").size == 4099
    out = rig.vfs.pread(rig.ctx, fd, 4090, 100)
    assert out == b"TAILBYTES"


# -- lifecycle ------------------------------------------------------------


def test_munmap_commits_and_frees_log_blocks(rig):
    rig.vfs.write_file(rig.ctx, "/m", b"i" * 4096)
    fd = rig.vfs.open(rig.ctx, "/m", f.O_RDWR)
    free0 = rig.fs.balloc.free_count
    region = rig.vfs.mmap(rig.ctx, fd, flags=f.MAP_ATOMIC, log_blocks=4)
    assert rig.fs.balloc.free_count == free0 - 5  # head + 4 payload
    region.store(rig.ctx, 0, b"LAST")
    region.munmap(rig.ctx)
    assert rig.fs.balloc.free_count == free0
    rig.crash_and_remount()
    assert rig.vfs.read_file(rig.ctx, "/m")[:4] == b"LAST"
    assert rig.env.stats.count("mmio_logs_recovered") == 0


def test_unlink_of_mapped_file_invalidates_mapping(rig):
    fd, region = amap(rig, "/m")
    region.store(rig.ctx, 0, b"doomed")
    rig.vfs.unlink(rig.ctx, "/m")
    rig.vfs.close(rig.ctx, fd)  # last ref: _release invalidates
    assert region.closed
    with pytest.raises(InvalidArgument):
        region.store(rig.ctx, 0, b"nope")
    # Nothing dangles: a remount finds no log to recover.
    rig.crash_and_remount()
    assert rig.env.stats.count("mmio_logs_recovered") == 0


def test_double_atomic_map_rejected(rig):
    fd, _region = amap(rig, "/m")
    with pytest.raises(InvalidArgument):
        rig.vfs.mmap(rig.ctx, fd, flags=f.MAP_ATOMIC)


def test_atomic_map_needs_writable_fd(rig):
    rig.vfs.write_file(rig.ctx, "/m", b"j" * 64)
    fd = rig.vfs.open(rig.ctx, "/m", f.O_RDONLY)
    with pytest.raises(InvalidArgument):
        rig.vfs.mmap(rig.ctx, fd, flags=f.MAP_ATOMIC)


def test_atomic_map_unsupported_on_kernel_only_stacks(rig):
    from repro.bench.runner import build_stack

    from repro.engine.context import ExecContext
    from repro.engine.env import SimEnv
    from repro.nvmm.config import NVMMConfig

    env = SimEnv()
    ctx = ExecContext(env, "test")
    # ext4-dax inherits the PMFS data plane (Libnvmmio ran on ext4-DAX
    # in reality) -- the block-device stacks are the ones that cannot.
    _fs, vfs = build_stack(env, "ext2-nvmmbd", NVMMConfig(), 8 << 20)
    vfs.write_file(ctx, "/m", b"k" * 64)
    fd = vfs.open(ctx, "/m", f.O_RDWR)
    with pytest.raises(InvalidArgument):
        vfs.mmap(ctx, fd, flags=f.MAP_ATOMIC)


def test_truncate_trims_redo_overlay(rig):
    _fd, region = amap(rig, "/m", data=b"l" * 8192, policy="redo")
    region.store(rig.ctx, 0, b"KEEP")
    region.store(rig.ctx, 6000, b"CUT")
    rig.vfs.truncate(rig.ctx, "/m", 4096)
    assert [off for off, _data in region._overlay] == [0]
    region.msync(rig.ctx)
    data = rig.vfs.read_file(rig.ctx, "/m")
    assert data[:4] == b"KEEP" and len(data) == 4096


# -- fault injection and integrity knobs ----------------------------------


def test_fault_injector_arms_per_op(rig):
    _fd, region = amap(rig, "/m")
    rig.fs.mmio_faults = MmioFaultInjector()
    rig.fs.mmio_faults.arm("store", max_hits=1)
    with pytest.raises(MediaError):
        region.store(rig.ctx, 0, b"boom")
    # Budget exhausted: the next store goes through.
    region.store(rig.ctx, 0, b"fine")
    rig.fs.mmio_faults.arm("msync", ino=region.ino)
    with pytest.raises(MediaError):
        region.msync(rig.ctx)
    rig.fs.mmio_faults.disarm("msync", ino=region.ino)
    region.msync(rig.ctx)


def test_checksums_off_still_works_without_crashes(rig):
    """log_checksums=False is the negative control for the crash
    explorer; on the happy path it must behave identically."""
    _fd, region = amap(rig, "/m", data=b"m" * 4096, log_checksums=False)
    region.store(rig.ctx, 0, b"UNSAFE")
    region.msync(rig.ctx)
    rig.crash_and_remount()
    assert rig.vfs.read_file(rig.ctx, "/m")[:6] == b"UNSAFE"


def test_stale_log_blocks_do_not_parse_after_reuse(rig):
    """A freed log block later re-allocated to a NEW mapping must never
    leak old entries into a recovery scan: the per-incarnation token
    makes prior-life bytes unparseable."""
    fd, region = amap(rig, "/m", data=b"n" * 4096, policy="undo")
    region.store(rig.ctx, 0, b"OLDLOG")
    region.munmap(rig.ctx)
    # Remap: very likely reuses the just-freed blocks.
    region2 = rig.vfs.mmap(rig.ctx, fd, flags=f.MAP_ATOMIC, policy="undo")
    assert region2.log.scan_media() == []
    region2.store(rig.ctx, 10, b"NEWLOG")
    entries = region2.log.scan_media()
    assert [e.file_offset for e in entries] == [10]

"""The submission/completion ring: batching, links, drains, async CQEs."""

import pytest

from repro.bench.runner import build_stack
from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.fs import flags as f
from repro.fs.errors import InvalidArgument, ReadOnly
from repro.io import ring as uring
from repro.nvmm.config import NVMMConfig


class Rig:
    def __init__(self, fs_name="hinfs"):
        self.env = SimEnv()
        self.config = NVMMConfig()
        self.fs, self.vfs = build_stack(self.env, fs_name, self.config,
                                        48 << 20)
        self.ctx = ExecContext(self.env, "ring-test")

    def open(self, path="/f", flags=f.O_CREAT | f.O_RDWR):
        return self.vfs.open(self.ctx, path, flags)


def test_sync_syscalls_are_single_sqe_batches():
    """pwrite/pread/fsync go through the ring: every one is one batch of
    one SQE, fully reaped."""
    rig = Rig()
    fd = rig.open()
    rig.vfs.pwrite(rig.ctx, fd, 0, b"x" * 64)
    rig.vfs.pread(rig.ctx, fd, 0, 64)
    rig.vfs.fsync(rig.ctx, fd)
    stats = rig.env.stats
    assert stats.count("ring_batches") == 3
    assert stats.count("ring_sqes") == 3
    assert stats.count("ring_cqes") == 3
    assert rig.vfs.ring(rig.ctx).in_flight == 0


def test_batch_pays_one_entry_and_saves_syscall_ns():
    """A batch of N pays T_syscall once; N separate submissions pay it N
    times -- everything else identical."""
    batched = Rig()
    fd = batched.open()
    ring = batched.vfs.ring(batched.ctx)
    sqes = [uring.prep_write(fd, bytes([i]) * 256, i * 256)
            for i in range(8)]
    cqes = ring.submit_and_wait(sqes)
    assert [c.res for c in cqes] == [256] * 8
    assert batched.env.stats.count("vfs_syscall_entries") == 2  # open + batch
    assert batched.env.stats.count("ring_batches") == 1

    single = Rig()
    fd2 = single.open()
    for i in range(8):
        single.vfs.pwrite(single.ctx, fd2, i * 256, bytes([i]) * 256)
    saved = single.ctx.now - batched.ctx.now
    assert saved == 7 * single.config.syscall_ns


def test_cqes_carry_user_data_in_submission_order():
    rig = Rig()
    fd = rig.open()
    ring = rig.vfs.ring(rig.ctx)
    sqes = [uring.prep_write(fd, b"a" * 16, i * 16, user_data="op%d" % i)
            for i in range(4)]
    cqes = ring.submit_and_wait(sqes)
    assert [c.user_data for c in cqes] == ["op0", "op1", "op2", "op3"]
    assert [c.seq for c in cqes] == sorted(c.seq for c in cqes)


def test_failed_sqe_completes_with_negative_errno():
    rig = Rig()
    fd = rig.vfs.open(rig.ctx, "/ro", f.O_CREAT | f.O_RDONLY)
    ring = rig.vfs.ring(rig.ctx)
    (cqe,) = ring.submit_and_wait([uring.prep_write(fd, b"nope")])
    assert cqe.res == -ReadOnly.errno
    assert isinstance(cqe.error, ReadOnly)
    assert not cqe.ok
    # The sync wrapper surfaces the same failure as the exception.
    with pytest.raises(ReadOnly):
        rig.vfs.write(rig.ctx, fd, b"nope")


def test_link_failure_cancels_the_rest_of_the_chain():
    rig = Rig()
    fd = rig.open()
    ro = rig.vfs.open(rig.ctx, "/ro", f.O_CREAT | f.O_RDONLY)
    ring = rig.vfs.ring(rig.ctx)
    bad = uring.prep_write(ro, b"x", 0, flags=uring.IOSQE_IO_LINK)
    linked = uring.prep_fsync(ro, flags=uring.IOSQE_IO_LINK)
    also_linked = uring.prep_write(ro, b"y", 0)
    unlinked = uring.prep_write(fd, b"fine", 0)
    cqes = ring.submit_and_wait([bad, linked, also_linked, unlinked])
    assert cqes[0].res == -ReadOnly.errno
    assert cqes[1].res == -uring.ECANCELED
    assert cqes[2].res == -uring.ECANCELED
    assert cqes[3].res == 4  # not linked to the failed chain
    assert rig.env.stats.count("ring_link_cancels") == 2


def test_successful_link_chain_runs_in_order():
    rig = Rig()
    fd = rig.open()
    ring = rig.vfs.ring(rig.ctx)
    write = uring.prep_write(fd, b"z" * 128, 0, flags=uring.IOSQE_IO_LINK)
    cqes = ring.submit_and_wait([write, uring.prep_fsync(fd)])
    assert [c.res for c in cqes] == [128, 0]
    assert rig.env.stats.count("ring_link_cancels") == 0


def test_async_fsync_defers_completion_to_the_persist(rig_fs="hinfs"):
    rig = Rig(rig_fs)
    fd = rig.open()
    rig.vfs.pwrite(rig.ctx, fd, 0, b"d" * 4096)
    ring = rig.vfs.ring(rig.ctx)
    ring.submit([uring.prep_fsync(fd, flags=uring.IOSQE_ASYNC)])
    assert ring.in_flight == 1
    submitted_at = rig.ctx.now
    (cqe,) = ring.wait(1)
    assert cqe.res == 0
    assert cqe.done_ns >= submitted_at
    # The reaper's clock advanced to the persist point.
    assert rig.ctx.now >= cqe.done_ns


def test_async_fsync_on_journaling_stack_rides_the_commit():
    rig = Rig("ext4-nvmmbd")
    fd = rig.open()
    rig.vfs.pwrite(rig.ctx, fd, 0, b"j" * 4096)
    before = rig.env.stats.count("jbd2_commits")
    ring = rig.vfs.ring(rig.ctx)
    ring.submit([uring.prep_fsync(fd, flags=uring.IOSQE_ASYNC)])
    # Nobody committed yet; reaping forces the commit inline.
    (cqe,) = ring.wait(1)
    assert cqe.res == 0
    assert rig.env.stats.count("jbd2_commits") == before + 1


def test_drain_barrier_forces_pending_completions():
    rig = Rig()
    fd = rig.open()
    rig.vfs.pwrite(rig.ctx, fd, 0, b"d" * 4096)
    ring = rig.vfs.ring(rig.ctx)
    ring.submit([uring.prep_fsync(fd, flags=uring.IOSQE_ASYNC)])
    assert ring.in_flight == 1
    ring.submit([uring.prep_write(fd, b"after", 0,
                                  flags=uring.IOSQE_IO_DRAIN)])
    assert rig.env.stats.count("ring_drains") == 1
    cqes = ring.wait(2)
    assert sorted(c.seq for c in cqes) == [c.seq for c in cqes]
    assert {c.res for c in cqes} == {0, 5}


def test_peek_reaps_only_ready_completions():
    rig = Rig()
    fd = rig.open()
    ring = rig.vfs.ring(rig.ctx)
    ring.submit([uring.prep_write(fd, b"now", 0)])
    assert [c.res for c in ring.peek()] == [3]
    assert ring.peek() == []


def test_wait_for_more_than_in_flight_is_einval():
    rig = Rig()
    fd = rig.open()
    ring = rig.vfs.ring(rig.ctx)
    ring.submit([uring.prep_write(fd, b"x", 0)])
    with pytest.raises(InvalidArgument):
        ring.wait(2)


def test_oversized_batch_is_einval():
    rig = Rig()
    fd = rig.open()
    ring = rig.vfs.ring(rig.ctx, sq_depth=64)
    sqes = [uring.prep_write(fd, b"x", i) for i in range(65)]
    with pytest.raises(InvalidArgument):
        ring.submit(sqes)


def test_submit_reaping_leaves_foreign_completions_alone():
    rig = Rig()
    fd = rig.open()
    ring = rig.vfs.ring(rig.ctx)
    ring.submit([uring.prep_write(fd, b"mine", 0, user_data="async")])
    # A sync syscall through the wrapper must not scoop the older CQE.
    assert rig.vfs.pwrite(rig.ctx, fd, 64, b"sync") == 4
    cqes = ring.peek()
    assert [c.user_data for c in cqes] == ["async"]


def test_batched_submission_is_traced_as_ring_layer():
    rig = Rig()
    rig.env.enable_tracing(256)
    fd = rig.open()
    ring = rig.vfs.ring(rig.ctx)
    ring.submit_and_wait([uring.prep_write(fd, b"a" * 64, 0),
                          uring.prep_write(fd, b"b" * 64, 64)])
    spans = rig.env.trace.spans()
    batch_spans = [s for s in spans if s.name == "ring_submit"]
    assert len(batch_spans) == 1
    (sp,) = batch_spans
    assert sp.layer == "ring"
    assert sp.meta == {"sqes": 2}
    phases = [layer for layer, _enter, _exit in sp.phases]
    assert phases.count("ring.sq_wait") == 2
    assert phases.count("ring.in_flight") == 2


def test_single_sqe_batches_add_no_ring_spans():
    rig = Rig()
    rig.env.enable_tracing(256)
    fd = rig.open()
    rig.vfs.pwrite(rig.ctx, fd, 0, b"x" * 64)
    assert all(s.layer != "ring" for s in rig.env.trace.spans())


def test_fdatasync_sqe_accounted_under_its_own_syscall():
    rig = Rig()
    fd = rig.open()
    rig.vfs.pwrite(rig.ctx, fd, 0, b"x" * 64)
    rig.vfs.fdatasync(rig.ctx, fd)
    assert rig.env.stats.syscall_counts["fdatasync"] == 1
    assert "fsync" not in rig.env.stats.syscall_counts

"""Unit tests for the page cache and pdflush."""

import pytest

from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.nvmm.config import NVMMConfig
from repro.pagecache.cache import PageCache
from repro.pagecache.writeback import PdflushTask

SEC = 1_000_000_000


class Rig:
    def __init__(self, capacity=8):
        self.env = SimEnv()
        self.config = NVMMConfig()
        self.flushed = []
        self.cache = PageCache(self.env, self.config, capacity, self._flush)
        self.ctx = ExecContext(self.env, "t")

    def _flush(self, ctx, page):
        self.flushed.append((page.ino, page.file_block, bytes(page.data)))


@pytest.fixture()
def rig():
    return Rig()


def test_miss_then_hit(rig):
    assert rig.cache.lookup(rig.ctx, 1, 0) is None
    page = rig.cache.insert(rig.ctx, 1, 0)
    assert rig.cache.lookup(rig.ctx, 1, 0) is page
    assert rig.env.stats.count("pagecache_hits") == 1
    assert rig.env.stats.count("pagecache_misses") == 1


def test_copy_in_marks_dirty_and_costs(rig):
    page = rig.cache.insert(rig.ctx, 1, 0)
    before = rig.ctx.now
    rig.cache.copy_in(rig.ctx, page, 100, b"hello", now_ns=42)
    assert page.dirty and page.dirtied_ns == 42
    assert bytes(page.data[100:105]) == b"hello"
    assert rig.ctx.now > before


def test_copy_out_roundtrip(rig):
    page = rig.cache.insert(rig.ctx, 1, 0)
    rig.cache.copy_in(rig.ctx, page, 0, b"abcdef", now_ns=1)
    assert rig.cache.copy_out(rig.ctx, page, 2, 3) == b"cde"


def test_eviction_at_capacity(rig):
    for i in range(10):
        rig.cache.insert(rig.ctx, 1, i)
    assert len(rig.cache) == 8
    # The two oldest pages are gone.
    assert rig.cache.lookup(rig.ctx, 1, 0) is None
    assert rig.cache.lookup(rig.ctx, 1, 9) is not None


def test_dirty_eviction_flushes_first(rig):
    page = rig.cache.insert(rig.ctx, 1, 0)
    rig.cache.copy_in(rig.ctx, page, 0, b"must flush", now_ns=1)
    for i in range(1, 10):
        rig.cache.insert(rig.ctx, 1, i)
    assert rig.flushed and rig.flushed[0][:2] == (1, 0)
    assert rig.flushed[0][2][:10] == b"must flush"


def test_drop_file(rig):
    for i in range(4):
        rig.cache.insert(rig.ctx, 7, i)
    rig.cache.insert(rig.ctx, 8, 0)
    assert rig.cache.drop_file(7) == 4
    assert len(rig.cache) == 1
    assert rig.cache.lookup(rig.ctx, 8, 0) is not None


def test_dirty_queries(rig):
    a = rig.cache.insert(rig.ctx, 1, 0)
    b = rig.cache.insert(rig.ctx, 1, 1)
    rig.cache.insert(rig.ctx, 2, 0)
    rig.cache.copy_in(rig.ctx, a, 0, b"x", now_ns=1)
    rig.cache.copy_in(rig.ctx, b, 0, b"y", now_ns=2)
    assert len(rig.cache.dirty_pages_of(1)) == 2
    assert rig.cache.dirty_count() == 2


def test_pdflush_flushes_aged_pages(rig):
    task = PdflushTask(rig.env, rig.cache, interval_ns=5 * SEC, age_ns=30 * SEC)
    rig.env.background.register(task)
    page = rig.cache.insert(rig.ctx, 1, 0)
    rig.cache.copy_in(rig.ctx, page, 0, b"old", now_ns=0)
    # Before the age threshold nothing is flushed.
    rig.env.background.advance_to(10 * SEC)
    assert not rig.flushed
    # After 30 s the periodic pass writes it back.
    rig.env.background.advance_to(36 * SEC)
    assert rig.flushed
    assert not page.dirty


def test_pdflush_ratio_trigger():
    rig = Rig(capacity=10)
    task = PdflushTask(rig.env, rig.cache, interval_ns=SEC, age_ns=1000 * SEC,
                       dirty_ratio=0.2)
    rig.env.background.register(task)
    for i in range(5):  # 50 % dirty > 20 % ratio
        page = rig.cache.insert(rig.ctx, 1, i)
        rig.cache.copy_in(rig.ctx, page, 0, b"d", now_ns=0)
    rig.env.background.advance_to(2 * SEC)
    assert len(rig.flushed) == 5

"""Unit and property tests for the radix tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pagecache.radix import RadixTree


def test_empty():
    tree = RadixTree()
    assert len(tree) == 0
    assert tree.get(0) is None
    assert 5 not in tree


def test_insert_get():
    tree = RadixTree()
    assert tree.insert(0, "zero")
    assert tree.get(0) == "zero"
    assert 0 in tree


def test_insert_replace():
    tree = RadixTree()
    tree.insert(1, "a")
    assert not tree.insert(1, "b")
    assert tree.get(1) == "b"
    assert len(tree) == 1


def test_large_keys_grow_height():
    tree = RadixTree()
    tree.insert(0, "small")
    tree.insert(1 << 30, "big")
    assert tree.get(0) == "small"
    assert tree.get(1 << 30) == "big"
    assert len(tree) == 2


def test_delete():
    tree = RadixTree()
    tree.insert(7, "x")
    assert tree.delete(7) == "x"
    assert tree.get(7) is None
    assert len(tree) == 0


def test_delete_missing():
    tree = RadixTree()
    tree.insert(1, "x")
    assert tree.delete(2) is None
    assert tree.delete(1 << 40) is None
    assert len(tree) == 1


def test_delete_prunes_to_empty():
    tree = RadixTree()
    tree.insert(123456, "v")
    tree.delete(123456)
    assert tree._root is None


def test_items_sorted():
    tree = RadixTree()
    for key in [100, 5, 70, 3, 10_000]:
        tree.insert(key, key)
    assert [k for k, _ in tree.items()] == [3, 5, 70, 100, 10_000]


def test_negative_key_rejected():
    with pytest.raises(ValueError):
        RadixTree().insert(-1, "x")
    assert RadixTree().get(-1) is None


def test_none_value_rejected():
    with pytest.raises(ValueError):
        RadixTree().insert(0, None)


def test_clear():
    tree = RadixTree()
    tree.insert(1, "a")
    tree.clear()
    assert len(tree) == 0


@settings(max_examples=100, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "get"]),
            st.integers(min_value=0, max_value=100_000),
        ),
        max_size=150,
    )
)
def test_radix_matches_dict_model(ops):
    tree = RadixTree()
    model = {}
    for op, key in ops:
        if op == "insert":
            tree.insert(key, key + 1)
            model[key] = key + 1
        elif op == "delete":
            assert tree.delete(key) == model.pop(key, None)
        else:
            assert tree.get(key) == model.get(key)
        assert len(tree) == len(model)
    assert tree.items() == sorted(model.items())

"""Failure injection: out of space, out of inodes."""

import pytest

from repro.core import HiNFS, HiNFSConfig
from repro.fs import flags as f
from repro.fs.errors import NoSpace

from tests.fs.conftest import PmfsRig


def tiny_rig(fs_cls=None, **kw):
    """A device with only a few MB of data blocks."""
    if fs_cls is None:
        return PmfsRig(size=4 << 20, journal_blocks=16, **kw)
    return PmfsRig(size=4 << 20, fs_cls=fs_cls, journal_blocks=16, **kw)


def test_pmfs_write_raises_enospc():
    rig = tiny_rig()
    fd = rig.vfs.open(rig.ctx, "/fill", f.O_CREAT | f.O_RDWR)
    with pytest.raises(NoSpace):
        for i in range(10_000):
            rig.vfs.pwrite(rig.ctx, fd, i * 4096, b"x" * 4096)


def test_enospc_leaves_fs_usable():
    rig = tiny_rig()
    fd = rig.vfs.open(rig.ctx, "/fill", f.O_CREAT | f.O_RDWR)
    written = 0
    try:
        for i in range(10_000):
            rig.vfs.pwrite(rig.ctx, fd, i * 4096, b"x" * 4096)
            written += 1
    except NoSpace:
        pass
    # Existing data is still readable and deletion frees space.
    assert rig.vfs.pread(rig.ctx, fd, 0, 4096) == b"x" * 4096
    rig.vfs.close(rig.ctx, fd)
    rig.vfs.unlink(rig.ctx, "/fill")
    rig.vfs.write_file(rig.ctx, "/again", b"y" * 4096)
    assert rig.vfs.read_file(rig.ctx, "/again") == b"y" * 4096


def test_hinfs_write_raises_enospc():
    rig = tiny_rig(fs_cls=HiNFS, hconfig=HiNFSConfig(buffer_bytes=1 << 20))
    fd = rig.vfs.open(rig.ctx, "/fill", f.O_CREAT | f.O_RDWR)
    with pytest.raises(NoSpace):
        for i in range(10_000):
            rig.vfs.pwrite(rig.ctx, fd, i * 4096, b"x" * 4096)


def test_hinfs_consistent_after_enospc_crash():
    rig = tiny_rig(fs_cls=HiNFS, hconfig=HiNFSConfig(buffer_bytes=1 << 20))
    fd = rig.vfs.open(rig.ctx, "/fill", f.O_CREAT | f.O_RDWR)
    try:
        for i in range(10_000):
            rig.vfs.pwrite(rig.ctx, fd, i * 4096, b"x" * 4096)
    except NoSpace:
        pass
    rig.crash_and_remount()
    st = rig.vfs.stat(rig.ctx, "/fill")
    assert len(rig.vfs.read_file(rig.ctx, "/fill")) == st.size


def test_inode_exhaustion():
    rig = PmfsRig(size=16 << 20, inode_count=260, journal_blocks=16)
    with pytest.raises(NoSpace):
        for i in range(1000):
            rig.vfs.write_file(rig.ctx, "/f%04d" % i, b"")
    # Deleting frees an inode slot for reuse.
    rig.vfs.unlink(rig.ctx, "/f0000")
    rig.vfs.write_file(rig.ctx, "/reborn", b"")
    assert rig.vfs.exists(rig.ctx, "/reborn")

"""The shard layer: one VFS mount fanned out over M NVMM devices.

Covers the global inode codec, parent-aware hash placement, namespace
ops through the unchanged VFS (including cross-shard rename with open
descriptors), remount reconciliation of the mirrored directory
skeleton, the per-device request/slot ledgers, and -- the health
satellite -- that one shard entering DEGRADED_RO refuses writes to its
own files only while the mount and every other shard stay writable,
with per-shard MTTR measurable after scrub recovery.
"""

import pytest

from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.fs import flags as f
from repro.fs.base import ROOT_INO
from repro.fs.errors import MediaError, ReadOnly
from repro.fs.health import DEGRADED_RO, HEALTHY
from repro.fs.pmfs.pmfs import _FreeContext
from repro.fs.shard import (
    INTENT_LOG_NAME,
    build_sharded,
    mount_sharded,
    shard_of,
)
from repro.fs.vfs import VFS
from repro.nvmm.config import NVMMConfig
from repro.nvmm.device import NVMMDevice


class ShardRig:
    """env + M domain'd devices + sharded fs + VFS + a test context."""

    def __init__(self, base="pmfs", nshards=2, size=8 << 20):
        self.env = SimEnv()
        self.config = NVMMConfig()
        self.base = base
        self.fs = build_sharded(self.env, base, self.config, size,
                                nshards=nshards)
        self.vfs = VFS(self.env, self.fs, self.config)
        self.ctx = ExecContext(self.env, "test")

    def remount(self):
        """Rebuild the whole sharded stack from every device's
        persistent image (clean images: unmount first for that)."""
        images = [inner.device.mem.persistent_snapshot()
                  for inner in self.fs.shards]
        self.env = SimEnv()
        devices = []
        for s, image in enumerate(images):
            device = NVMMDevice(self.env, self.config, len(image),
                                domain="dev%d" % s)
            device.mem.load_snapshot(image)
            devices.append(device)
        self.fs = mount_sharded(self.env, devices, self.base, self.config)
        self.vfs = VFS(self.env, self.fs, self.config)
        self.ctx = ExecContext(self.env, "test")
        return self.fs


def name_on(shard, nshards, prefix="f", parent=ROOT_INO):
    """A root-entry name whose hash owner is ``shard``."""
    return next("%s%d" % (prefix, i) for i in range(10_000)
                if shard_of("%s%d" % (prefix, i), nshards,
                            parent=parent) == shard)


# -- inode number codec ----------------------------------------------------


@pytest.mark.parametrize("nshards", [1, 2, 4, 8])
def test_codec_round_trips_and_interleaves(nshards):
    rig = ShardRig(nshards=nshards, size=4 << 20)
    fs = rig.fs
    seen = set()
    for local in range(1, 65):
        for shard in range(nshards):
            gino = fs._enc(local, shard)
            assert fs._dec(gino) == (shard, local)
            assert gino not in seen
            seen.add(gino)
    # Shard 0's local root is the global root; at M=1 the codec is the
    # identity, so single-device golden results cannot shift.
    assert fs._enc(ROOT_INO, 0) == ROOT_INO
    if nshards == 1:
        assert all(fs._enc(local, 0) == local for local in range(1, 65))


def test_parent_aware_placement_spreads_same_name():
    # Hashing the bare name would pin every "/tNNNN/data" to one device;
    # keying on (parent gino, name) spreads them.
    owners = {shard_of("data", 4, parent=p) for p in range(1, 200)}
    assert owners == {0, 1, 2, 3}
    # Deterministic for a fixed key.
    assert shard_of("data", 4, parent=7) == shard_of("data", 4, parent=7)


# -- namespace through the unchanged VFS -----------------------------------


def test_create_write_read_across_shards():
    rig = ShardRig(nshards=2)
    names = [name_on(0, 2), name_on(1, 2)]
    for i, name in enumerate(names):
        fd = rig.vfs.open(rig.ctx, "/" + name, f.O_CREAT | f.O_RDWR)
        rig.vfs.pwrite(rig.ctx, fd, 0, bytes([i + 1]) * 3000)
        rig.vfs.fsync(rig.ctx, fd)
        rig.vfs.close(rig.ctx, fd)
    # Each file landed on its hash owner's device.
    for i, name in enumerate(names):
        gino = rig.fs.lookup(rig.ctx, ROOT_INO, name)
        assert rig.fs._dec(gino)[0] == i
        assert rig.vfs.read_file(rig.ctx, "/" + name) == bytes([i + 1]) * 3000
    # readdir merges the shards and hides the intent log.
    listing = [name for name, _ino in rig.vfs.readdir(rig.ctx, "/")]
    assert listing == sorted(names)
    assert INTENT_LOG_NAME not in listing


def test_mkdir_mirrors_and_rmdir_drops_all_mirrors():
    rig = ShardRig(nshards=2)
    free = _FreeContext(rig.env)
    rig.vfs.mkdir(rig.ctx, "/sub")
    gino = rig.fs.lookup(rig.ctx, ROOT_INO, "sub")
    locals_ = rig.fs._dir_locals[gino]
    assert len(locals_) == 2
    for s, local in enumerate(locals_):
        assert rig.fs.shards[s].lookup(free, ROOT_INO, "sub") == local
    # Files inside the subdir place by (subdir gino, name).
    inner = name_on(1, 2, parent=gino)
    fd = rig.vfs.open(rig.ctx, "/sub/" + inner, f.O_CREAT | f.O_RDWR)
    rig.vfs.close(rig.ctx, fd)
    assert rig.fs._dec(rig.fs.lookup(rig.ctx, gino, inner))[0] == 1
    rig.vfs.unlink(rig.ctx, "/sub/" + inner)
    rig.vfs.rmdir(rig.ctx, "/sub")
    for s in range(2):
        assert rig.fs.shards[s].lookup(free, ROOT_INO, "sub") is None


def test_misplaced_file_found_by_probe_fallback():
    # A file parked on a non-owner shard (the residue of an in-place
    # rename under live mappings) must still resolve globally.
    rig = ShardRig(nshards=2)
    free = _FreeContext(rig.env)
    name = name_on(1, 2)  # hash owner is shard 1 ...
    local = rig.fs.shards[0].create_file(free, ROOT_INO, name)  # ... on 0
    gino = rig.fs.lookup(rig.ctx, ROOT_INO, name)
    assert gino == rig.fs._enc(local, 0)
    assert rig.vfs.exists(rig.ctx, "/" + name)


def test_cross_shard_rename_migrates_and_remaps_open_fd():
    rig = ShardRig(nshards=2)
    src = name_on(0, 2, prefix="src")
    dst = name_on(1, 2, prefix="dst")
    fd = rig.vfs.open(rig.ctx, "/" + src, f.O_CREAT | f.O_RDWR)
    rig.vfs.pwrite(rig.ctx, fd, 0, b"m" * 5000)
    rig.vfs.fsync(rig.ctx, fd)
    old_gino = rig.fs.lookup(rig.ctx, ROOT_INO, src)
    assert rig.fs._dec(old_gino)[0] == 0
    rig.vfs.rename(rig.ctx, "/" + src, "/" + dst)
    assert rig.env.stats.count("shard_cross_renames") == 1
    new_gino = rig.fs.lookup(rig.ctx, ROOT_INO, dst)
    assert rig.fs._dec(new_gino)[0] == 1
    assert not rig.vfs.exists(rig.ctx, "/" + src)
    # The open descriptor followed the migration: reads and writes via
    # the old fd hit the file's new device.
    assert rig.vfs.pread(rig.ctx, fd, 0, 5000) == b"m" * 5000
    rig.vfs.pwrite(rig.ctx, fd, 0, b"n" * 8)
    rig.vfs.close(rig.ctx, fd)
    assert rig.vfs.read_file(rig.ctx, "/" + dst)[:8] == b"n" * 8


def test_same_shard_rename_does_not_migrate():
    rig = ShardRig(nshards=2)
    a = name_on(0, 2, prefix="a")
    b = name_on(0, 2, prefix="b")
    fd = rig.vfs.open(rig.ctx, "/" + a, f.O_CREAT | f.O_RDWR)
    rig.vfs.close(rig.ctx, fd)
    gino = rig.fs.lookup(rig.ctx, ROOT_INO, a)
    rig.vfs.rename(rig.ctx, "/" + a, "/" + b)
    assert rig.fs.lookup(rig.ctx, ROOT_INO, b) == gino
    assert rig.env.stats.count("shard_cross_renames") == 0


# -- remount / reconciliation ----------------------------------------------


def test_remount_preserves_namespace_and_content():
    rig = ShardRig(nshards=2)
    names = [name_on(s, 2, prefix="p%d" % s) for s in range(2)]
    rig.vfs.mkdir(rig.ctx, "/d")
    for i, name in enumerate(names):
        fd = rig.vfs.open(rig.ctx, "/" + name, f.O_CREAT | f.O_RDWR)
        rig.vfs.pwrite(rig.ctx, fd, 0, bytes([0x40 + i]) * 2048)
        rig.vfs.fsync(rig.ctx, fd)
        rig.vfs.close(rig.ctx, fd)
    rig.fs.unmount(rig.ctx)
    rig.remount()
    listing = [name for name, _ino in rig.vfs.readdir(rig.ctx, "/")]
    assert listing == sorted(names + ["d"])
    for i, name in enumerate(names):
        assert rig.vfs.read_file(rig.ctx, "/" + name) \
            == bytes([0x40 + i]) * 2048


def test_reconcile_repairs_missing_mirror_and_drops_orphan():
    rig = ShardRig(nshards=2)
    free = _FreeContext(rig.env)
    rig.vfs.mkdir(rig.ctx, "/kept")
    gino = rig.fs.lookup(rig.ctx, ROOT_INO, "kept")
    locals_ = rig.fs._dir_locals[gino]
    # Sabotage: drop the shard-1 mirror of /kept (as if mkdir crashed
    # after shard 0 committed) and leave a shard-1-only orphan (as if
    # rmdir crashed after canonical shard 0 removed it).
    rig.fs.shards[1].rmdir(free, ROOT_INO, "kept", locals_[1])
    rig.fs.shards[1].mkdir(free, ROOT_INO, "ghost")
    rig.fs.unmount(rig.ctx)
    fs = rig.remount()
    free = _FreeContext(rig.env)
    assert rig.env.stats.count("shard_mirrors_repaired") >= 1
    assert rig.env.stats.count("shard_orphans_dropped") >= 1
    listing = [name for name, _ino in rig.vfs.readdir(rig.ctx, "/")]
    assert listing == ["kept"]
    kept = fs.lookup(rig.ctx, ROOT_INO, "kept")
    for s, local in enumerate(fs._dir_locals[kept]):
        assert fs.shards[s].lookup(free, ROOT_INO, "kept") == local


# -- per-device ledgers ----------------------------------------------------


def test_per_device_ledgers_sum_exactly():
    rig = ShardRig(base="hinfs", nshards=4)
    for s in range(4):
        name = name_on(s, 4, prefix="led")
        fd = rig.vfs.open(rig.ctx, "/" + name,
                          f.O_CREAT | f.O_RDWR | f.O_SYNC)
        for i in range(3):
            rig.vfs.pwrite(rig.ctx, fd, i * 4096, b"L" * 4096)
        rig.vfs.close(rig.ctx, fd)
    stats = rig.env.stats
    reqs = [stats.count("sharded_reqs@dev%d" % s) for s in range(4)]
    grants = [stats.count("nvmm_slot_grants@dev%d" % s) for s in range(4)]
    assert all(n > 0 for n in reqs)
    assert sum(reqs) == stats.count("sharded_reqs_total")
    assert sum(grants) == stats.count("nvmm_slot_grants_total") > 0
    # Each device's ledger matches its own FCFSServers grant counter.
    pools = rig.env.resources()
    for s in range(4):
        assert grants[s] == pools["nvmm_write_slots@dev%d" % s].total_grants


# -- per-shard health (one shard degrading must not flip the mount) --------


def _degrade_shard(rig, shard, local_ino, errors=5):
    for _ in range(errors):  # default MountHealth threshold is 5
        rig.fs.shards[shard].note_wb_error(local_ino)


def test_one_shard_degraded_ro_keeps_the_rest_writable():
    rig = ShardRig(nshards=2)
    names = [name_on(s, 2, prefix="h") for s in range(2)]
    fds = []
    for name in names:
        fds.append(rig.vfs.open(rig.ctx, "/" + name, f.O_CREAT | f.O_RDWR))
    sick = rig.fs._dec(rig.fs.lookup(rig.ctx, ROOT_INO, names[1]))
    assert sick[0] == 1
    _degrade_shard(rig, 1, sick[1])
    assert rig.env.stats.count("shard_wb_errors@dev1") == 5
    assert rig.fs.shard_health[1].state == DEGRADED_RO
    assert rig.fs.shard_health[0].state == HEALTHY
    assert rig.fs.shard_states == [HEALTHY, DEGRADED_RO]
    assert rig.fs.aggregate_observable == DEGRADED_RO
    # The mount-level FSM did NOT flip: the VFS still admits writes...
    assert rig.vfs.health.writable
    # ...and shard 0 serves them, while shard 1 refuses its own.
    rig.vfs.pwrite(rig.ctx, fds[0], 0, b"ok")
    with pytest.raises(ReadOnly):
        rig.vfs.pwrite(rig.ctx, fds[1], 0, b"no")
    # Creates route by hash owner: a shard-1 name refuses, shard 0 works.
    with pytest.raises(ReadOnly):
        rig.vfs.open(rig.ctx, "/" + name_on(1, 2, prefix="new"),
                     f.O_CREAT | f.O_RDWR)
    fd = rig.vfs.open(rig.ctx, "/" + name_on(0, 2, prefix="new"),
                      f.O_CREAT | f.O_RDWR)
    rig.vfs.close(rig.ctx, fd)
    # Reads of the degraded shard still serve (remount-ro posture).
    assert rig.vfs.pread(rig.ctx, fds[1], 0, 4) == b""


def test_scrub_recovers_degraded_shard_with_per_device_mttr():
    rig = ShardRig(nshards=2)
    name = name_on(1, 2, prefix="r")
    fd = rig.vfs.open(rig.ctx, "/" + name, f.O_CREAT | f.O_RDWR)
    rig.vfs.close(rig.ctx, fd)
    local = rig.fs._dec(rig.fs.lookup(rig.ctx, ROOT_INO, name))[1]
    _degrade_shard(rig, 1, local)  # outage opens at t=0
    assert rig.fs.shard_mttr_ns() == [None, None]  # still down: no MTTR
    rig.ctx.charge(750_000)
    report = rig.fs.scrub(rig.ctx)  # no bad media lines -> clean pass
    assert report.clean
    assert rig.fs.shard_health[1].state == HEALTHY
    assert rig.fs.shard_states == [HEALTHY, HEALTHY]
    assert rig.fs.aggregate_observable == HEALTHY
    mttrs = rig.fs.shard_mttr_ns()
    assert mttrs[0] is None            # dev0 never degraded
    assert mttrs[1] is not None and mttrs[1] >= 750_000
    # Recovered means writable again.  The injected writeback errors
    # are still owed to the file exactly once (errseq semantics) ...
    fd = rig.vfs.open(rig.ctx, "/" + name, f.O_RDWR)
    with pytest.raises(MediaError):
        rig.vfs.fsync(rig.ctx, fd)
    # ... and once reported, the shard serves writes like any other.
    rig.vfs.pwrite(rig.ctx, fd, 0, b"back")
    rig.vfs.close(rig.ctx, fd)

"""lseek(2) whence semantics on the VFS layer."""

import pytest

from repro.fs import flags as f
from repro.fs.errors import InvalidArgument


@pytest.fixture()
def fd(rig):
    fd = rig.vfs.open(rig.ctx, "/seek", f.O_CREAT | f.O_RDWR)
    rig.vfs.write(rig.ctx, fd, b"0123456789")
    return fd


def test_seek_set(rig, fd):
    assert rig.vfs.lseek(rig.ctx, fd, 4) == 4
    assert rig.vfs.read(rig.ctx, fd, 3) == b"456"
    assert rig.vfs.lseek(rig.ctx, fd, 0, f.SEEK_SET) == 0
    assert rig.vfs.read(rig.ctx, fd, 2) == b"01"


def test_seek_cur(rig, fd):
    rig.vfs.lseek(rig.ctx, fd, 2, f.SEEK_SET)
    assert rig.vfs.lseek(rig.ctx, fd, 3, f.SEEK_CUR) == 5
    assert rig.vfs.lseek(rig.ctx, fd, -4, f.SEEK_CUR) == 1
    assert rig.vfs.read(rig.ctx, fd, 2) == b"12"


def test_seek_end(rig, fd):
    assert rig.vfs.lseek(rig.ctx, fd, 0, f.SEEK_END) == 10
    assert rig.vfs.lseek(rig.ctx, fd, -3, f.SEEK_END) == 7
    assert rig.vfs.read(rig.ctx, fd, 10) == b"789"


def test_seek_negative_is_einval(rig, fd):
    for whence, pos in [(f.SEEK_SET, -1), (f.SEEK_CUR, -100),
                        (f.SEEK_END, -11)]:
        with pytest.raises(InvalidArgument):
            rig.vfs.lseek(rig.ctx, fd, pos, whence)
    with pytest.raises(InvalidArgument):
        rig.vfs.lseek(rig.ctx, fd, 0, whence=17)
    # Failed seeks leave the position untouched (fixture wrote 10 bytes).
    assert rig.vfs.lseek(rig.ctx, fd, 0, f.SEEK_CUR) == 10


def test_seek_past_eof_then_write_leaves_hole(rig, fd):
    """Seeking beyond EOF is legal; a later write leaves a hole that
    reads back as zeros."""
    assert rig.vfs.lseek(rig.ctx, fd, 4096, f.SEEK_END) == 10 + 4096
    rig.vfs.write(rig.ctx, fd, b"tail")
    assert rig.vfs.stat(rig.ctx, "/seek").size == 10 + 4096 + 4
    rig.vfs.lseek(rig.ctx, fd, 0)
    head = rig.vfs.read(rig.ctx, fd, 10)
    hole = rig.vfs.read(rig.ctx, fd, 4096)
    assert head == b"0123456789"
    assert hole == b"\0" * 4096
    assert rig.vfs.read(rig.ctx, fd, 100) == b"tail"

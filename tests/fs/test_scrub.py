"""Scrubber tests: repair from replicas, isolate lost data, feed the
mount-health FSM."""

import pytest

from repro.bench.runner import build_stack
from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.faults.media import MediaFaultModel
from repro.fs import flags as f
from repro.fs.scrub import (
    LINES_PER_BLOCK,
    NullScrubber,
    ScrubTask,
    scrubber_for,
)
from repro.nvmm.config import CACHELINE_SIZE, NVMMConfig

from tests.fs.conftest import PmfsRig


def attach(rig_or_fs):
    device = getattr(rig_or_fs, "device", None) or rig_or_fs.fs.device
    return device.attach_faults(MediaFaultModel(seed=0))


def data_blocks(fs, ino):
    return sorted(b for _fb, b in fs._map(ino).mapped_blocks())


def first_data_line(fs, ino):
    return data_blocks(fs, ino)[0] * LINES_PER_BLOCK


class TestPmfsScrubber:
    def test_clean_pass_scans_allocated_extents(self, rig):
        attach(rig)
        rig.vfs.write_file(rig.ctx, "/a", b"x" * 8192, sync=True)
        report = rig.fs.scrub(rig.ctx)
        assert report.clean
        assert report.bad_lines_found == 0
        assert report.scanned_lines > 0
        assert rig.env.stats.count("scrub_passes") == 1

    def test_superblock_line_repairs_in_place(self, rig):
        model = attach(rig)
        rig.vfs.write_file(rig.ctx, "/a", b"x" * 4096, sync=True)
        model.poison_line(0)
        report = rig.fs.scrub(rig.ctx)
        assert report.clean and report.repaired_lines == 1
        assert not model.bad_lines
        rig.remount()
        assert rig.vfs.read_file(rig.ctx, "/a") == b"x" * 4096

    def test_journal_line_heals_to_regenerable_state(self, rig):
        model = attach(rig)
        rig.vfs.write_file(rig.ctx, "/a", b"x" * 4096, sync=True)
        line = rig.fs.sb.journal_start * LINES_PER_BLOCK + 3
        model.poison_line(line)
        report = rig.fs.scrub(rig.ctx)
        assert report.clean and report.repaired_lines == 1
        rig.remount()  # journal scan must not trip on the healed slot
        assert rig.vfs.read_file(rig.ctx, "/a") == b"x" * 4096

    def test_inode_table_line_repairs_from_mirror(self, rig):
        model = attach(rig)
        rig.vfs.write_file(rig.ctx, "/a", b"y" * 5000, sync=True)
        ino = rig.fs.lookup(rig.ctx, 1, "a")
        addr = rig.fs.itable.core_addr(ino)
        model.poison_line(addr // CACHELINE_SIZE)
        report = rig.fs.scrub(rig.ctx)
        assert report.clean and report.repaired_lines == 1
        rig.remount()
        assert rig.vfs.stat(rig.ctx, "/a").size == 5000
        assert rig.vfs.read_file(rig.ctx, "/a") == b"y" * 5000

    def test_lost_data_is_isolated_quarantined_and_reported(self, rig):
        model = attach(rig)
        rig.vfs.write_file(rig.ctx, "/a", b"z" * 8192, sync=True)
        ino = rig.fs.lookup(rig.ctx, 1, "a")
        old_block = data_blocks(rig.fs, ino)[0]
        line = old_block * LINES_PER_BLOCK + 3
        model.poison_line(line)
        report = rig.fs.scrub(rig.ctx)
        # PMFS has no DRAM copy of file data: the line is gone.  The
        # block's survivors are salvaged into a fresh block, the loss is
        # on the inode's errseq, and the bad block leaves circulation.
        assert report.clean
        assert report.isolated_lines == 1 and report.repaired_lines == 0
        assert report.quarantined_blocks == [old_block]
        assert old_block in rig.fs.balloc.quarantined
        assert data_blocks(rig.fs, ino)[0] != old_block
        assert rig.fs.wb_err.pending() == [ino]
        # Consume the deferred EIO (first close reports it, errseq-style)
        # so the content checks below read clean descriptors.
        from repro.fs.errors import MediaError

        fd = rig.vfs.open(rig.ctx, "/a", f.O_RDWR)
        with pytest.raises(MediaError):
            rig.vfs.close(rig.ctx, fd)
        got = rig.vfs.read_file(rig.ctx, "/a")
        assert got[3 * CACHELINE_SIZE:4 * CACHELINE_SIZE] == b"\0" * 64
        assert got[:3 * CACHELINE_SIZE] == b"z" * (3 * CACHELINE_SIZE)
        assert got[4 * CACHELINE_SIZE:] == b"z" * (8192 - 4 * 64)
        # The salvage is durable and the quarantine survives remount
        # reconstruction of the allocator.
        rig.remount()
        assert rig.vfs.read_file(rig.ctx, "/a") == got

    def test_pointer_block_rebuilds_from_mirror(self, rig):
        model = attach(rig)
        data = bytes(range(256)) * 208  # 13 blocks: needs the indirect
        rig.vfs.write_file(rig.ctx, "/big", data, sync=True)
        ino = rig.fs.lookup(rig.ctx, 1, "big")
        indirect = rig.fs.itable.get(ino).indirect
        assert indirect
        model.poison_line(indirect * LINES_PER_BLOCK + 1)
        report = rig.fs.scrub(rig.ctx)
        assert report.clean and report.repaired_lines == 1
        assert report.isolated_lines == 0
        rig.remount()
        assert rig.vfs.read_file(rig.ctx, "/big") == data

    def test_dirent_block_rebuilds_from_directory_mirror(self, rig):
        model = attach(rig)
        for name in ("a", "b", "c"):
            rig.vfs.write_file(rig.ctx, "/" + name, b"1", sync=True)
        root_block = data_blocks(rig.fs, 1)[0]
        model.poison_line(root_block * LINES_PER_BLOCK)
        report = rig.fs.scrub(rig.ctx)
        assert report.clean and report.repaired_lines == 1
        rig.remount()
        assert {name for name, _ in rig.vfs.readdir(rig.ctx, "/")} == \
            {"a", "b", "c"}
        assert rig.vfs.read_file(rig.ctx, "/a") == b"1"

    def test_free_block_is_healed_but_quarantined(self, rig):
        model = attach(rig)
        rig.vfs.write_file(rig.ctx, "/a", b"x" * 4096, sync=True)
        free_block = rig.fs.sb.total_blocks - 1
        model.poison_line(free_block * LINES_PER_BLOCK + 5)
        report = rig.fs.scrub(rig.ctx)
        assert report.clean
        assert report.quarantined_blocks == [free_block]
        assert free_block in rig.fs.balloc.quarantined


class TestHiNFSScrubber:
    def test_buffered_data_repairs_in_place(self):
        from repro.core.hinfs import HiNFS

        rig = PmfsRig(fs_cls=HiNFS)
        model = attach(rig)
        # A fresh lazy write: the write buffer holds a fully-valid DRAM
        # copy of the (already mapped) NVMM block.
        rig.vfs.write_file(rig.ctx, "/a", b"q" * 4096)
        ino = rig.fs.lookup(rig.ctx, 1, "a")
        assert rig.fs.buffer.lookup(ino, 0) is not None
        model.poison_line(first_data_line(rig.fs, ino) + 2)
        report = rig.fs.scrub(rig.ctx)
        assert report.clean
        assert report.repaired_lines == 1 and report.isolated_lines == 0
        assert rig.fs.wb_err.pending() == []  # nothing was lost
        assert rig.vfs.read_file(rig.ctx, "/a") == b"q" * 4096
        # The repair wrote the DRAM copy back: after an fsync persists
        # the metadata, the content is durable across remount.
        fd = rig.vfs.open(rig.ctx, "/a", f.O_RDWR)
        rig.vfs.fsync(rig.ctx, fd)
        rig.vfs.close(rig.ctx, fd)
        rig.remount()
        assert rig.vfs.read_file(rig.ctx, "/a") == b"q" * 4096

    def test_unbuffered_data_is_isolated(self):
        from repro.core.hinfs import HiNFS

        rig = PmfsRig(fs_cls=HiNFS)
        model = attach(rig)
        rig.vfs.write_file(rig.ctx, "/a", b"p" * 4096, sync=True)
        rig.fs.unmount(rig.ctx)  # drain the buffer: no DRAM copy left
        ino = rig.fs.lookup(rig.ctx, 1, "a")
        model.poison_line(first_data_line(rig.fs, ino))
        report = rig.fs.scrub(rig.ctx)
        assert report.clean
        assert report.isolated_lines == 1
        assert rig.fs.wb_err.pending() == [ino]


class TestExtScrubber:
    @pytest.mark.parametrize("fs_name", ["ext2-nvmmbd", "ext4-nvmmbd"])
    def test_cached_page_repairs_in_place(self, fs_name):
        env = SimEnv()
        fs, vfs = build_stack(env, fs_name, NVMMConfig(), 32 << 20)
        ctx = ExecContext(env, "t")
        model = fs.bdev.nvmm.attach_faults(MediaFaultModel(seed=0))
        vfs.write_file(ctx, "/a", b"c" * 4096, sync=True)
        ino = fs.lookup(ctx, 1, "a")
        disk = sorted(fs._inodes[ino].blocks.values())[0]
        model.poison_line(disk * LINES_PER_BLOCK + 7)
        report = fs.scrub(ctx)
        assert report.clean
        assert report.repaired_lines == 1 and report.isolated_lines == 0
        assert not model.bad_lines
        assert vfs.read_file(ctx, "/a") == b"c" * 4096

    def test_uncached_data_is_salvaged_and_remapped(self):
        env = SimEnv()
        fs, vfs = build_stack(env, "ext2-nvmmbd", NVMMConfig(), 32 << 20)
        ctx = ExecContext(env, "t")
        model = fs.bdev.nvmm.attach_faults(MediaFaultModel(seed=0))
        vfs.write_file(ctx, "/a", b"d" * 4096, sync=True)
        fs.unmount(ctx)
        fs.drop_caches()
        ino = fs.lookup(ctx, 1, "a")
        old_disk = sorted(fs._inodes[ino].blocks.values())[0]
        model.poison_line(old_disk * LINES_PER_BLOCK + 1)
        report = fs.scrub(ctx)
        assert report.clean
        assert report.isolated_lines == 1
        assert report.quarantined_blocks == [old_disk]
        assert old_disk in fs.balloc.quarantined
        assert sorted(fs._inodes[ino].blocks.values())[0] != old_disk
        assert fs.wb_err.pending() == [ino]
        from repro.fs.errors import MediaError

        fd = vfs.open(ctx, "/a", f.O_RDWR)
        with pytest.raises(MediaError):
            vfs.close(ctx, fd)
        got = vfs.read_file(ctx, "/a")
        assert got[CACHELINE_SIZE:2 * CACHELINE_SIZE] == b"\0" * 64
        assert got[:CACHELINE_SIZE] == b"d" * 64

    def test_reserved_metadata_heals(self):
        env = SimEnv()
        fs, vfs = build_stack(env, "ext2-nvmmbd", NVMMConfig(), 32 << 20)
        ctx = ExecContext(env, "t")
        model = fs.bdev.nvmm.attach_faults(MediaFaultModel(seed=0))
        vfs.write_file(ctx, "/a", b"m" * 4096, sync=True)
        model.poison_line(2)  # inside the reserved metadata region
        report = fs.scrub(ctx)
        assert report.clean and report.repaired_lines == 1
        assert not model.bad_lines


class TestPlumbing:
    def test_scrubber_for_picks_the_right_walker(self, rig):
        from repro.fs.scrub import ExtScrubber, PmfsScrubber

        assert isinstance(scrubber_for(rig.fs), PmfsScrubber)
        env = SimEnv()
        ext, _ = build_stack(env, "ext2-nvmmbd", NVMMConfig(), 32 << 20)
        assert isinstance(scrubber_for(ext), ExtScrubber)

    def test_null_scrubber_is_trivially_clean(self):
        class Bare:
            name = "bare"

            def __init__(self):
                self.env = SimEnv()

        fs = Bare()
        assert isinstance(scrubber_for(fs), NullScrubber)
        report = NullScrubber(fs).run(ExecContext(fs.env, "t"))
        assert report.clean and report.scanned_lines == 0

    def test_report_as_dict_round_trips(self, rig):
        attach(rig)
        rig.vfs.write_file(rig.ctx, "/a", b"x" * 4096, sync=True)
        d = rig.fs.scrub(rig.ctx).as_dict()
        assert d["clean"] and d["fs"] == rig.fs.name
        assert d["duration_ns"] >= 0

    def test_scrub_task_runs_on_interval_and_recovers_health(self, rig):
        model = attach(rig)
        rig.vfs.health.media_error_threshold = 1
        rig.vfs.write_file(rig.ctx, "/a", b"x" * 8192, sync=True)
        ino = rig.fs.lookup(rig.ctx, 1, "a")
        model.poison_line(first_data_line(rig.fs, ino))
        from repro.fs.errors import MediaError

        with pytest.raises(MediaError):
            rig.vfs.read_file(rig.ctx, "/a")
        assert not rig.vfs.health.writable
        task = rig.env.background.register(
            ScrubTask(rig.env, rig.vfs, interval_ns=1_000_000))
        rig.env.background.advance_to(2_500_000)
        assert rig.env.stats.count("scrub_runs") >= 2
        assert rig.vfs.health.writable  # recovery edge, no operator
        assert task.next_due_ns() == 3_000_000

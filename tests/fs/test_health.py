"""Tests for the mount-health state machine (HEALTHY -> DEGRADED_RO ->
ISOLATED, with the clean-scrub recovery edge)."""

import pytest

from repro.engine.env import SimEnv
from repro.fs.health import DEGRADED_RO, HEALTHY, ISOLATED, MountHealth
from repro.fs.scrub import ScrubReport


def _health(**kwargs):
    return MountHealth(SimEnv(), **kwargs)


def _report(repaired=0, isolated=0, unrecovered=0):
    report = ScrubReport("t")
    report.repaired_lines = repaired
    report.isolated_lines = isolated
    report.unrecovered_lines = unrecovered
    report.bad_lines_found = repaired + isolated + unrecovered
    return report


def test_initial_state_serves_everything():
    health = _health()
    assert health.state == HEALTHY
    assert health.writable and health.readable
    assert health.mttr_ns() is None


def test_threshold_validation():
    with pytest.raises(ValueError):
        _health(media_error_threshold=0)
    with pytest.raises(ValueError):
        _health(media_error_threshold=5, isolate_threshold=3)
    assert _health(media_error_threshold=5).isolate_threshold == 20


def test_errors_below_threshold_stay_healthy():
    health = _health(media_error_threshold=3)
    assert health.count_media_error(10) == HEALTHY
    assert health.count_media_error(20) == HEALTHY
    assert health.history == []


def test_degrades_at_threshold_and_refuses_writes():
    health = _health(media_error_threshold=3)
    for at in (10, 20, 30):
        state = health.count_media_error(at)
    assert state == DEGRADED_RO
    assert not health.writable
    assert health.readable  # remount-ro posture: reads still served
    assert health.history[0][:3] == (HEALTHY, DEGRADED_RO, 30)


def test_isolates_when_errors_keep_climbing():
    health = _health(media_error_threshold=2, isolate_threshold=4)
    for at in (1, 2, 3, 4):
        state = health.count_media_error(at)
    assert state == ISOLATED
    assert not health.readable
    transitions = [(src, dst) for src, dst, _at, _why in health.history]
    assert transitions == [(HEALTHY, DEGRADED_RO), (DEGRADED_RO, ISOLATED)]


def test_clean_scrub_recovers_degraded_mount():
    health = _health(media_error_threshold=2)
    health.count_media_error(100)
    health.count_media_error(200)
    assert health.state == DEGRADED_RO
    assert health.scrub_result(900, _report(repaired=2)) == HEALTHY
    assert health.writable
    assert health.media_errors == 0
    assert health.reason is None
    assert health.env.stats.count("health_recoveries") == 1
    # The error budget is fresh: one new error does not re-degrade.
    assert health.count_media_error(1000) == HEALTHY


def test_clean_scrub_recovers_isolated_mount():
    health = _health(media_error_threshold=1, isolate_threshold=2)
    health.count_media_error(10)
    health.count_media_error(20)
    assert health.state == ISOLATED
    assert health.scrub_result(50, _report(isolated=2)) == HEALTHY


def test_dirty_scrub_changes_nothing():
    health = _health(media_error_threshold=1)
    health.count_media_error(10)
    assert health.scrub_result(20, _report(unrecovered=1)) == DEGRADED_RO
    assert health.media_errors == 1


def test_clean_scrub_while_healthy_resets_error_count():
    health = _health(media_error_threshold=3)
    health.count_media_error(10)
    health.scrub_result(20, _report())
    assert health.media_errors == 0
    assert health.history == []  # no transition recorded


def test_force_degraded_only_from_healthy():
    health = _health()
    health.force_degraded(5, "journal recovery failed")
    assert health.state == DEGRADED_RO
    assert health.reason == "journal recovery failed"
    history_len = len(health.history)
    health.force_degraded(6, "again")
    assert len(health.history) == history_len


def test_mttr_measures_outage_spans():
    health = _health(media_error_threshold=1)
    health.count_media_error(100)            # leaves HEALTHY at 100
    health.scrub_result(400, _report())      # back at 400 -> outage 300
    health.count_media_error(1000)           # leaves again at 1000
    health.scrub_result(1100, _report())     # back at 1100 -> outage 100
    assert health.mttr_ns() == 200
    # An open outage (degraded, not yet recovered) is not counted.
    health.count_media_error(5000)
    assert health.mttr_ns() == 200

"""Tests for the extfs metadata-writeback and throttling models."""

import pytest

from repro.fs.extfs import Ext2, Ext4

from tests.fs.test_extfs import ExtRig


def test_metadata_blocks_deduplicate():
    rig = ExtRig(Ext2)
    # Many writes to one file dirty the same inode-table block once.
    rig.vfs.write_file(rig.ctx, "/f", b"x" * 4096)
    dirty_after_one = len(rig.fs._dirty_meta)
    fd = rig.vfs.open(rig.ctx, "/f")
    for i in range(20):
        rig.vfs.pwrite(rig.ctx, fd, i * 100, b"y")
    assert len(rig.fs._dirty_meta) == dirty_after_one


def test_fsync_writes_inode_metadata_block():
    rig = ExtRig(Ext2)
    fd = rig.vfs.open(rig.ctx, "/f", 0x40 | 0x2)  # O_CREAT | O_RDWR
    rig.vfs.write(rig.ctx, fd, b"data")
    before = rig.env.stats.count("meta_block_writes")
    rig.vfs.fsync(rig.ctx, fd)
    assert rig.env.stats.count("meta_block_writes") == before + 1


def test_metadata_flush_threshold():
    rig = ExtRig(Ext2)
    rig.fs.META_FLUSH_THRESHOLD = 8
    # Inode-table blocks hold 16 inodes each, so ~200 creates dirty
    # enough distinct metadata blocks to cross the (lowered) threshold.
    for i in range(200):
        rig.vfs.write_file(rig.ctx, "/m%03d" % i, b"z")
    assert rig.env.stats.count("meta_block_writes") > 0
    assert len(rig.fs._dirty_meta) < 8


def test_unmount_flushes_metadata():
    rig = ExtRig(Ext2)
    rig.vfs.write_file(rig.ctx, "/u", b"q")
    assert rig.fs._dirty_meta
    rig.vfs.unmount(rig.ctx)
    assert not rig.fs._dirty_meta


def test_balance_dirty_pages_throttles_writers():
    rig = ExtRig(Ext2, cache_pages=64)
    # Write far beyond 40 % of a 64-page cache: the writer must flush.
    rig.vfs.write_file(rig.ctx, "/big", b"w" * (64 * 4096), chunk=1 << 14)
    assert rig.env.stats.count("balance_dirty_flushes") > 0
    assert rig.fs.cache.dirty_total <= int(0.4 * 64) + 1


def test_dirty_total_is_consistent():
    rig = ExtRig(Ext2, cache_pages=32)
    rig.vfs.write_file(rig.ctx, "/a", b"a" * (16 * 4096))
    rig.vfs.write_file(rig.ctx, "/b", b"b" * (16 * 4096))
    rig.vfs.unlink(rig.ctx, "/a")
    counted = sum(1 for p in rig.fs.cache.lru.iter_lrw_order() if p.dirty)
    assert rig.fs.cache.dirty_total == counted


def test_ext4_ordered_mode_flushes_data_before_commit():
    rig = ExtRig(Ext4)
    fd = rig.vfs.open(rig.ctx, "/o", 0x40 | 0x2)
    rig.vfs.write(rig.ctx, fd, b"ordered" * 100)
    ino = rig.vfs.stat(rig.ctx, "/o").ino
    assert rig.fs.cache.dirty_pages_of(ino)
    rig.fs.jbd2.commit(rig.ctx)
    # Ordered mode: the commit drove the data pages out first.
    assert not rig.fs.cache.dirty_pages_of(ino)


def test_ext4_meta_heavier_than_ext2():
    times = {}
    for cls in (Ext2, Ext4):
        rig = ExtRig(cls)
        t0 = rig.ctx.now
        for i in range(40):
            rig.vfs.write_file(rig.ctx, "/n%02d" % i, b"x", sync=True)
        times[cls.name] = rig.ctx.now - t0
    assert times["ext4"] > times["ext2"]

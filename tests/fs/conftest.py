"""Shared fixtures for file-system tests."""

import pytest

from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.fs.pmfs import PMFS
from repro.fs.vfs import VFS
from repro.nvmm.config import NVMMConfig
from repro.nvmm.device import NVMMDevice


class PmfsRig:
    """One env + device + PMFS + VFS + a foreground context."""

    def __init__(self, size=32 << 20, config=None, fs_cls=PMFS, **fs_kwargs):
        self.env = SimEnv()
        self.config = config or NVMMConfig()
        self.device = NVMMDevice(self.env, self.config, size)
        self.fs_kwargs = fs_kwargs
        self.fs = fs_cls(self.env, self.device, self.config, **fs_kwargs)
        self.vfs = VFS(self.env, self.fs, self.config)
        self.ctx = ExecContext(self.env, "test")

    def remount(self, fs_cls=None, **fs_kwargs):
        """Crash-less remount: rebuild all DRAM state from NVMM."""
        from repro.engine.background import BackgroundRegistry

        # The old file system instance is dead; its background writeback
        # timeline must not keep flushing stale DRAM into the new image.
        self.env.background = BackgroundRegistry()
        fs_cls = fs_cls or type(self.fs)
        merged = dict(self.fs_kwargs)
        merged.update(fs_kwargs)
        self.fs = fs_cls.mount(self.env, self.device, self.config, **merged)
        self.vfs = VFS(self.env, self.fs, self.config)
        return self.fs

    def crash_and_remount(self, evict_lines=(), fs_cls=None, **fs_kwargs):
        """Power-fail the device, then mount (journal recovery runs)."""
        self.device.crash(evict_lines)
        return self.remount(fs_cls=fs_cls, **fs_kwargs)


@pytest.fixture()
def rig():
    return PmfsRig()

"""Vectored I/O through the unified request pipeline.

The contract under test: the whole iovec list of a readv/writev/
pwritev/preadv call travels as ONE :class:`repro.io.IORequest` -- one
syscall-overhead charge at the VFS boundary and, on HiNFS, one
eager/lazy benefit decision, regardless of how many iovecs it carries.
"""

import pytest

from repro.core import HiNFS, HiNFSConfig
from repro.fs import flags as f

from tests.fs.conftest import PmfsRig


def hinfs_rig():
    return PmfsRig(size=32 << 20, fs_cls=HiNFS,
                   hconfig=HiNFSConfig(buffer_bytes=2 << 20))


@pytest.fixture()
def rig():
    return hinfs_rig()


def test_writev_contiguous_iovecs_is_one_request(rig):
    """Acceptance: 8 contiguous 4 KiB iovecs -> exactly one syscall
    charge and one eager/lazy decision."""
    fd = rig.vfs.open(rig.ctx, "/v", f.O_CREAT | f.O_RDWR)
    iovecs = [bytes([i]) * 4096 for i in range(8)]
    entries_before = rig.env.stats.count("vfs_syscall_entries")
    decisions_before = rig.env.stats.count("hinfs_benefit_decisions")
    written = rig.vfs.writev(rig.ctx, fd, iovecs)
    assert written == 8 * 4096
    assert rig.env.stats.count("vfs_syscall_entries") - entries_before == 1
    assert (rig.env.stats.count("hinfs_benefit_decisions")
            - decisions_before) == 1
    assert rig.env.stats.syscall_counts.get("writev") == 1
    assert rig.vfs.pread(rig.ctx, fd, 0, 8 * 4096) == b"".join(iovecs)


def test_equivalent_pwrites_decide_per_call(rig):
    """Counter-contrast: the same 8 blocks as 8 pwrite calls cost 8
    syscall charges and 8 decisions."""
    fd = rig.vfs.open(rig.ctx, "/w", f.O_CREAT | f.O_RDWR)
    entries_before = rig.env.stats.count("vfs_syscall_entries")
    decisions_before = rig.env.stats.count("hinfs_benefit_decisions")
    for i in range(8):
        rig.vfs.pwrite(rig.ctx, fd, i * 4096, bytes([i]) * 4096)
    assert rig.env.stats.count("vfs_syscall_entries") - entries_before == 8
    assert (rig.env.stats.count("hinfs_benefit_decisions")
            - decisions_before) == 8


def test_readv_scatters_and_advances_position(rig):
    fd = rig.vfs.open(rig.ctx, "/r", f.O_CREAT | f.O_RDWR)
    rig.vfs.pwrite(rig.ctx, fd, 0, b"abcdefghij")
    rig.vfs.lseek(rig.ctx, fd, 0)
    entries_before = rig.env.stats.count("vfs_syscall_entries")
    assert rig.vfs.readv(rig.ctx, fd, [3, 4]) == [b"abc", b"defg"]
    assert rig.env.stats.count("vfs_syscall_entries") - entries_before == 1
    # Position advanced past both iovecs; a short tail read stops at EOF.
    assert rig.vfs.readv(rig.ctx, fd, [5, 5]) == [b"hij", b""]


def test_preadv_pwritev_positioned_roundtrip(rig):
    fd = rig.vfs.open(rig.ctx, "/p", f.O_CREAT | f.O_RDWR)
    assert rig.vfs.pwritev(rig.ctx, fd, 100, [b"one", b"two", b"three"]) == 11
    assert rig.vfs.preadv(rig.ctx, fd, 100, [3, 3, 5, 10]) == [
        b"one", b"two", b"three", b"",
    ]
    assert rig.env.stats.syscall_counts.get("pwritev") == 1
    assert rig.env.stats.syscall_counts.get("preadv") == 1


def test_writev_honours_o_append(rig):
    rig.vfs.write_file(rig.ctx, "/log", b"head:")
    fd = rig.vfs.open(rig.ctx, "/log", f.O_WRONLY | f.O_APPEND)
    rig.vfs.writev(rig.ctx, fd, [b"aa", b"bb"])
    assert rig.vfs.read_file(rig.ctx, "/log") == b"head:aabb"


def test_vectored_validation(rig):
    from repro.fs.errors import InvalidArgument, ReadOnly

    fd = rig.vfs.open(rig.ctx, "/bad", f.O_CREAT | f.O_RDWR)
    with pytest.raises(InvalidArgument):
        rig.vfs.pwritev(rig.ctx, fd, -1, [b"x"])
    with pytest.raises(InvalidArgument):
        rig.vfs.preadv(rig.ctx, fd, 0, [4, -1])
    ro = rig.vfs.open(rig.ctx, "/bad", f.O_RDONLY)
    with pytest.raises(ReadOnly):
        rig.vfs.writev(rig.ctx, ro, [b"x"])
    wo = rig.vfs.open(rig.ctx, "/bad", f.O_WRONLY)
    with pytest.raises(ReadOnly):
        rig.vfs.readv(rig.ctx, wo, [4])


def test_whole_file_helpers_are_single_requests(rig):
    """read_file/write_file submit one vectored request, not N."""
    payload = bytes(i % 251 for i in range(3 << 20))  # 3 chunks at 1 MiB
    rig.vfs.write_file(rig.ctx, "/blob", payload)
    assert rig.env.stats.syscall_counts.get("write") == 1
    assert rig.vfs.read_file(rig.ctx, "/blob") == payload
    assert rig.env.stats.syscall_counts.get("read") == 1


def test_vectored_works_on_pmfs_too():
    rig = PmfsRig(size=32 << 20)
    fd = rig.vfs.open(rig.ctx, "/v", f.O_CREAT | f.O_RDWR)
    rig.vfs.pwritev(rig.ctx, fd, 0, [b"12", b"34", b"56"])
    assert rig.vfs.preadv(rig.ctx, fd, 0, [4, 4]) == [b"1234", b"56"]

"""Unit and property tests for the packed-dirent directories."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fs.errors import ExistsError, NotFound
from repro.fs.pmfs.layout import (
    DIRENT_NAME_MAX,
    pack_dirent,
    pack_empty_dirent,
    unpack_dirent,
)

from tests.fs.conftest import PmfsRig


def test_pack_unpack_roundtrip():
    raw = pack_dirent(42, "hello.txt")
    assert unpack_dirent(raw) == (42, "hello.txt")


def test_unpack_empty_slot():
    assert unpack_dirent(pack_empty_dirent()) is None


def test_name_too_long_rejected():
    with pytest.raises(ValueError):
        pack_dirent(1, "x" * (DIRENT_NAME_MAX + 1))


def test_max_length_name_ok():
    name = "n" * DIRENT_NAME_MAX
    assert unpack_dirent(pack_dirent(7, name)) == (7, name)


def test_unicode_names():
    raw = pack_dirent(9, "файл")
    assert unpack_dirent(raw) == (9, "файл")


def test_directory_add_remove_through_fs(rig):
    rig.vfs.mkdir(rig.ctx, "/d")
    directory = rig.fs._dir(rig.vfs.stat(rig.ctx, "/d").ino)
    tx = rig.fs.journal.begin(rig.ctx)
    directory.add(rig.ctx, tx, "a", 100)
    directory.add(rig.ctx, tx, "b", 101)
    rig.fs.journal.commit(rig.ctx, tx)
    assert directory.lookup("a") == 100
    assert len(directory) == 2
    tx = rig.fs.journal.begin(rig.ctx)
    assert directory.remove(rig.ctx, tx, "a") == 100
    rig.fs.journal.commit(rig.ctx, tx)
    assert directory.lookup("a") is None


def test_duplicate_add_rejected(rig):
    directory = rig.fs._dir(1)
    tx = rig.fs.journal.begin(rig.ctx)
    directory.add(rig.ctx, tx, "dup", 5)
    with pytest.raises(ExistsError):
        directory.add(rig.ctx, tx, "dup", 6)
    rig.fs.journal.commit(rig.ctx, tx)


def test_remove_missing_rejected(rig):
    directory = rig.fs._dir(1)
    tx = rig.fs.journal.begin(rig.ctx)
    with pytest.raises(NotFound):
        directory.remove(rig.ctx, tx, "ghost")
    rig.fs.journal.commit(rig.ctx, tx)


def test_slots_reused_after_removal(rig):
    """Removing then adding keeps the directory from growing unboundedly."""
    for i in range(100):
        rig.vfs.write_file(rig.ctx, "/cycle", b"x")
        rig.vfs.unlink(rig.ctx, "/cycle")
    root = rig.fs._dir(1)
    assert root.inode.size <= 64 * 4  # a handful of slots, not 100


@settings(max_examples=30, deadline=None)
@given(ops=st.lists(
    st.tuples(st.booleans(), st.integers(min_value=0, max_value=20)),
    max_size=60,
))
def test_directory_matches_dict_and_rescan(ops):
    """Directory behaves like a dict; the NVMM dirents rebuild exactly."""
    rig = PmfsRig()
    directory = rig.fs._dir(1)
    model = {}
    ino_counter = [100]
    for is_add, slot in ops:
        name = "n%02d" % slot
        tx = rig.fs.journal.begin(rig.ctx)
        if is_add and name not in model:
            ino_counter[0] += 1
            directory.add(rig.ctx, tx, name, ino_counter[0])
            model[name] = ino_counter[0]
        elif not is_add and name in model:
            assert directory.remove(rig.ctx, tx, name) == model.pop(name)
        rig.fs.journal.commit(rig.ctx, tx)
    assert dict(directory.entries()) == model
    # Rebuild from NVMM: identical contents.
    directory.load_from_nvmm()
    assert dict(directory.entries()) == model

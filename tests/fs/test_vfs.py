"""VFS-layer tests: paths, descriptors, accounting."""

import pytest

from repro.fs import flags as f
from repro.fs.errors import (
    InvalidArgument,
    IsADirectory,
    NotADirectory,
    NotFound,
)


def test_empty_path_rejected(rig):
    with pytest.raises(InvalidArgument):
        rig.vfs.open(rig.ctx, "")


def test_path_through_file_component_fails(rig):
    rig.vfs.write_file(rig.ctx, "/f", b"x")
    with pytest.raises((NotFound, NotADirectory)):
        rig.vfs.open(rig.ctx, "/f/child")


def test_trailing_and_double_slashes_normalised(rig):
    rig.vfs.mkdir(rig.ctx, "/d")
    rig.vfs.write_file(rig.ctx, "/d//f/", b"x")
    assert rig.vfs.read_file(rig.ctx, "/d/f") == b"x"


def test_stat_root(rig):
    assert rig.vfs.stat(rig.ctx, "/").is_dir


def test_dentry_cache_speeds_up_lookups(rig):
    rig.vfs.mkdir(rig.ctx, "/a")
    rig.vfs.mkdir(rig.ctx, "/a/b")
    rig.vfs.write_file(rig.ctx, "/a/b/f", b"x")
    first_cost_start = rig.ctx.now
    rig.vfs.stat(rig.ctx, "/a/b/f")
    first = rig.ctx.now - first_cost_start
    second_start = rig.ctx.now
    rig.vfs.stat(rig.ctx, "/a/b/f")
    second = rig.ctx.now - second_start
    assert second <= first


def test_unlink_invalidates_dentry(rig):
    rig.vfs.write_file(rig.ctx, "/gone", b"x")
    rig.vfs.unlink(rig.ctx, "/gone")
    rig.vfs.write_file(rig.ctx, "/gone", b"y")  # recreate under same name
    assert rig.vfs.read_file(rig.ctx, "/gone") == b"y"


def test_each_open_gets_independent_position(rig):
    rig.vfs.write_file(rig.ctx, "/f", b"0123456789")
    fd1 = rig.vfs.open(rig.ctx, "/f", f.O_RDONLY)
    fd2 = rig.vfs.open(rig.ctx, "/f", f.O_RDONLY)
    assert rig.vfs.read(rig.ctx, fd1, 4) == b"0123"
    assert rig.vfs.read(rig.ctx, fd2, 4) == b"0123"
    assert rig.vfs.read(rig.ctx, fd1, 4) == b"4567"


def test_write_advances_position(rig):
    fd = rig.vfs.open(rig.ctx, "/f", f.O_CREAT | f.O_RDWR)
    rig.vfs.write(rig.ctx, fd, b"abc")
    rig.vfs.write(rig.ctx, fd, b"def")
    assert rig.vfs.read_file(rig.ctx, "/f") == b"abcdef"


def test_syscall_counts_recorded(rig):
    fd = rig.vfs.open(rig.ctx, "/f", f.O_CREAT | f.O_RDWR)
    rig.vfs.write(rig.ctx, fd, b"zz")
    rig.vfs.fsync(rig.ctx, fd)
    rig.vfs.close(rig.ctx, fd)
    counts = rig.env.stats.syscall_counts
    for name in ("open", "write", "fsync", "close"):
        assert counts[name] == 1


def test_every_syscall_charges_entry_overhead(rig):
    before = rig.ctx.now
    rig.vfs.stat(rig.ctx, "/")
    assert rig.ctx.now - before >= rig.config.syscall_ns


def test_fsync_byte_accounting(rig):
    fd = rig.vfs.open(rig.ctx, "/f", f.O_CREAT | f.O_RDWR)
    rig.vfs.write(rig.ctx, fd, b"a" * 1000)
    assert rig.env.stats.count("app_bytes_written") == 1000
    assert rig.env.stats.count("app_bytes_fsynced") == 0
    rig.vfs.fsync(rig.ctx, fd)
    assert rig.env.stats.count("app_bytes_fsynced") == 1000
    # A second fsync with no new writes adds nothing.
    rig.vfs.fsync(rig.ctx, fd)
    assert rig.env.stats.count("app_bytes_fsynced") == 1000


def test_o_sync_writes_count_as_fsynced(rig):
    fd = rig.vfs.open(rig.ctx, "/f", f.O_CREAT | f.O_RDWR | f.O_SYNC)
    rig.vfs.write(rig.ctx, fd, b"b" * 500)
    assert rig.env.stats.count("app_bytes_fsynced") == 500


def test_unlink_discards_unsynced_accounting(rig):
    fd = rig.vfs.open(rig.ctx, "/f", f.O_CREAT | f.O_RDWR)
    rig.vfs.write(rig.ctx, fd, b"c" * 300)
    rig.vfs.close(rig.ctx, fd)
    rig.vfs.unlink(rig.ctx, "/f")
    assert rig.env.stats.count("app_bytes_fsynced") == 0


def test_read_file_chunking(rig):
    payload = bytes(range(256)) * 100
    rig.vfs.write_file(rig.ctx, "/big", payload, chunk=1000)
    assert rig.vfs.read_file(rig.ctx, "/big", chunk=777) == payload


def test_ops_completed_counts_syscalls(rig):
    before = rig.env.stats.ops_completed
    rig.vfs.write_file(rig.ctx, "/f", b"x")  # open + write + close
    assert rig.env.stats.ops_completed - before == 3


# -- rename(2) -----------------------------------------------------------


def test_rename_moves_file(rig):
    rig.vfs.write_file(rig.ctx, "/a", b"data")
    rig.vfs.rename(rig.ctx, "/a", "/b")
    assert not rig.vfs.exists(rig.ctx, "/a")
    assert rig.vfs.read_file(rig.ctx, "/b") == b"data"


def test_rename_across_directories(rig):
    rig.vfs.mkdir(rig.ctx, "/d1")
    rig.vfs.mkdir(rig.ctx, "/d2")
    rig.vfs.write_file(rig.ctx, "/d1/f", b"x")
    rig.vfs.rename(rig.ctx, "/d1/f", "/d2/g")
    assert rig.vfs.read_file(rig.ctx, "/d2/g") == b"x"
    assert not rig.vfs.exists(rig.ctx, "/d1/f")


def test_rename_replaces_existing_file_and_frees_blocks(rig):
    rig.vfs.write_file(rig.ctx, "/dst", b"old" * 4096, sync=True)
    used_before = rig.fs.balloc.used_count
    rig.vfs.write_file(rig.ctx, "/src", b"new", sync=True)
    rig.vfs.rename(rig.ctx, "/src", "/dst")
    assert rig.vfs.read_file(rig.ctx, "/dst") == b"new"
    assert not rig.vfs.exists(rig.ctx, "/src")
    # The replaced file's blocks went back to the allocator.
    assert rig.fs.balloc.used_count < used_before


def test_rename_same_path_is_noop(rig):
    rig.vfs.write_file(rig.ctx, "/a", b"keep")
    rig.vfs.rename(rig.ctx, "/a", "/a")
    assert rig.vfs.read_file(rig.ctx, "/a") == b"keep"


def test_rename_missing_source(rig):
    with pytest.raises(NotFound):
        rig.vfs.rename(rig.ctx, "/nope", "/dst")


def test_rename_file_over_directory_rejected(rig):
    rig.vfs.write_file(rig.ctx, "/f", b"x")
    rig.vfs.mkdir(rig.ctx, "/d")
    with pytest.raises(IsADirectory):
        rig.vfs.rename(rig.ctx, "/f", "/d")


def test_rename_directory_over_file_rejected(rig):
    rig.vfs.mkdir(rig.ctx, "/d")
    rig.vfs.write_file(rig.ctx, "/f", b"x")
    with pytest.raises(NotADirectory):
        rig.vfs.rename(rig.ctx, "/d", "/f")


def test_rename_updates_dentry_cache(rig):
    rig.vfs.write_file(rig.ctx, "/a", b"x")
    rig.vfs.stat(rig.ctx, "/a")  # warm the dcache
    rig.vfs.rename(rig.ctx, "/a", "/b")
    with pytest.raises(NotFound):
        rig.vfs.stat(rig.ctx, "/a")
    assert rig.vfs.stat(rig.ctx, "/b").size == 1


def test_rename_survives_crash(rig):
    rig.vfs.write_file(rig.ctx, "/a", b"x" * 4096, sync=True)
    rig.vfs.rename(rig.ctx, "/a", "/b")
    rig.crash_and_remount()
    assert not rig.vfs.exists(rig.ctx, "/a")
    assert rig.vfs.read_file(rig.ctx, "/b") == b"x" * 4096

"""VFS-layer tests: paths, descriptors, accounting."""

import pytest

from repro.fs import flags as f
from repro.fs.errors import InvalidArgument, NotADirectory, NotFound


def test_empty_path_rejected(rig):
    with pytest.raises(InvalidArgument):
        rig.vfs.open(rig.ctx, "")


def test_path_through_file_component_fails(rig):
    rig.vfs.write_file(rig.ctx, "/f", b"x")
    with pytest.raises((NotFound, NotADirectory)):
        rig.vfs.open(rig.ctx, "/f/child")


def test_trailing_and_double_slashes_normalised(rig):
    rig.vfs.mkdir(rig.ctx, "/d")
    rig.vfs.write_file(rig.ctx, "/d//f/", b"x")
    assert rig.vfs.read_file(rig.ctx, "/d/f") == b"x"


def test_stat_root(rig):
    assert rig.vfs.stat(rig.ctx, "/").is_dir


def test_dentry_cache_speeds_up_lookups(rig):
    rig.vfs.mkdir(rig.ctx, "/a")
    rig.vfs.mkdir(rig.ctx, "/a/b")
    rig.vfs.write_file(rig.ctx, "/a/b/f", b"x")
    first_cost_start = rig.ctx.now
    rig.vfs.stat(rig.ctx, "/a/b/f")
    first = rig.ctx.now - first_cost_start
    second_start = rig.ctx.now
    rig.vfs.stat(rig.ctx, "/a/b/f")
    second = rig.ctx.now - second_start
    assert second <= first


def test_unlink_invalidates_dentry(rig):
    rig.vfs.write_file(rig.ctx, "/gone", b"x")
    rig.vfs.unlink(rig.ctx, "/gone")
    rig.vfs.write_file(rig.ctx, "/gone", b"y")  # recreate under same name
    assert rig.vfs.read_file(rig.ctx, "/gone") == b"y"


def test_each_open_gets_independent_position(rig):
    rig.vfs.write_file(rig.ctx, "/f", b"0123456789")
    fd1 = rig.vfs.open(rig.ctx, "/f", f.O_RDONLY)
    fd2 = rig.vfs.open(rig.ctx, "/f", f.O_RDONLY)
    assert rig.vfs.read(rig.ctx, fd1, 4) == b"0123"
    assert rig.vfs.read(rig.ctx, fd2, 4) == b"0123"
    assert rig.vfs.read(rig.ctx, fd1, 4) == b"4567"


def test_write_advances_position(rig):
    fd = rig.vfs.open(rig.ctx, "/f", f.O_CREAT | f.O_RDWR)
    rig.vfs.write(rig.ctx, fd, b"abc")
    rig.vfs.write(rig.ctx, fd, b"def")
    assert rig.vfs.read_file(rig.ctx, "/f") == b"abcdef"


def test_syscall_counts_recorded(rig):
    fd = rig.vfs.open(rig.ctx, "/f", f.O_CREAT | f.O_RDWR)
    rig.vfs.write(rig.ctx, fd, b"zz")
    rig.vfs.fsync(rig.ctx, fd)
    rig.vfs.close(rig.ctx, fd)
    counts = rig.env.stats.syscall_counts
    for name in ("open", "write", "fsync", "close"):
        assert counts[name] == 1


def test_every_syscall_charges_entry_overhead(rig):
    before = rig.ctx.now
    rig.vfs.stat(rig.ctx, "/")
    assert rig.ctx.now - before >= rig.config.syscall_ns


def test_fsync_byte_accounting(rig):
    fd = rig.vfs.open(rig.ctx, "/f", f.O_CREAT | f.O_RDWR)
    rig.vfs.write(rig.ctx, fd, b"a" * 1000)
    assert rig.env.stats.count("app_bytes_written") == 1000
    assert rig.env.stats.count("app_bytes_fsynced") == 0
    rig.vfs.fsync(rig.ctx, fd)
    assert rig.env.stats.count("app_bytes_fsynced") == 1000
    # A second fsync with no new writes adds nothing.
    rig.vfs.fsync(rig.ctx, fd)
    assert rig.env.stats.count("app_bytes_fsynced") == 1000


def test_o_sync_writes_count_as_fsynced(rig):
    fd = rig.vfs.open(rig.ctx, "/f", f.O_CREAT | f.O_RDWR | f.O_SYNC)
    rig.vfs.write(rig.ctx, fd, b"b" * 500)
    assert rig.env.stats.count("app_bytes_fsynced") == 500


def test_unlink_discards_unsynced_accounting(rig):
    fd = rig.vfs.open(rig.ctx, "/f", f.O_CREAT | f.O_RDWR)
    rig.vfs.write(rig.ctx, fd, b"c" * 300)
    rig.vfs.close(rig.ctx, fd)
    rig.vfs.unlink(rig.ctx, "/f")
    assert rig.env.stats.count("app_bytes_fsynced") == 0


def test_read_file_chunking(rig):
    payload = bytes(range(256)) * 100
    rig.vfs.write_file(rig.ctx, "/big", payload, chunk=1000)
    assert rig.vfs.read_file(rig.ctx, "/big", chunk=777) == payload


def test_ops_completed_counts_syscalls(rig):
    before = rig.env.stats.ops_completed
    rig.vfs.write_file(rig.ctx, "/f", b"x")  # open + write + close
    assert rig.env.stats.ops_completed - before == 3

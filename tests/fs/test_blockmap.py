"""Unit and property tests for the PMFS block map (direct/indirect)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.fs.errors import InvalidArgument
from repro.fs.pmfs.blockmap import BlockMap
from repro.fs.pmfs.inodes import InodeTable, KIND_FILE
from repro.fs.pmfs.journal import Journal
from repro.fs.pmfs.layout import MAX_FILE_BLOCKS, N_DIRECT, PTRS_PER_BLOCK, Superblock
from repro.nvmm.allocator import BlockAllocator
from repro.nvmm.config import NVMMConfig
from repro.nvmm.device import NVMMDevice


class Rig:
    def __init__(self, size=64 << 20):
        self.env = SimEnv()
        self.config = NVMMConfig()
        self.device = NVMMDevice(self.env, self.config, size)
        self.sb = Superblock.compute(size // 4096, journal_blocks=16)
        self.journal = Journal(self.env, self.device, self.sb, self.config)
        self.itable = InodeTable(self.device, self.journal, self.sb)
        self.balloc = BlockAllocator(
            self.sb.total_blocks - self.sb.data_start,
            first_block=self.sb.data_start,
        )
        self.ctx = ExecContext(self.env, "t")
        tx = self.journal.begin(self.ctx)
        self.inode = self.itable.alloc(self.ctx, tx, KIND_FILE, 0)
        self.journal.commit(self.ctx, tx)
        self.map = BlockMap(self.device, self.journal, self.itable,
                            self.inode, self.balloc)

    def set(self, fb, nvmm):
        tx = self.journal.begin(self.ctx)
        self.map.set(self.ctx, tx, fb, nvmm)
        self.itable.write_pointers(self.ctx, tx, self.inode)
        self.journal.commit(self.ctx, tx)

    def clear(self, fb):
        tx = self.journal.begin(self.ctx)
        freed = self.map.clear(self.ctx, tx, fb)
        self.itable.write_pointers(self.ctx, tx, self.inode)
        self.journal.commit(self.ctx, tx)
        return freed

    def reload(self):
        """Rebuild the mirror from NVMM (as mount recovery does)."""
        fresh = BlockMap(self.device, self.journal, self.itable, self.inode,
                         self.balloc)
        fresh.load_from_nvmm()
        return fresh


def test_direct_blocks():
    rig = Rig()
    rig.set(0, 5000)
    rig.set(11, 5011)
    assert rig.map.get(0) == 5000
    assert rig.map.get(11) == 5011
    assert rig.map.get(5) is None


def test_indirect_block_allocated_on_demand():
    rig = Rig()
    used_before = rig.balloc.used_count
    rig.set(N_DIRECT, 6000)
    assert rig.map.get(N_DIRECT) == 6000
    # One pointer block (the indirect) was allocated.
    assert rig.balloc.used_count == used_before + 1
    assert rig.inode.indirect != 0


def test_double_indirect_region():
    rig = Rig()
    fb = N_DIRECT + PTRS_PER_BLOCK + 3
    rig.set(fb, 7000)
    assert rig.map.get(fb) == 7000
    assert rig.inode.dindirect != 0


def test_far_double_indirect_slot():
    rig = Rig()
    fb = N_DIRECT + PTRS_PER_BLOCK + 5 * PTRS_PER_BLOCK + 17
    rig.set(fb, 8000)
    assert rig.map.get(fb) == 8000


def test_beyond_max_rejected():
    rig = Rig()
    tx = rig.journal.begin(rig.ctx)
    with pytest.raises(InvalidArgument):
        rig.map.set(rig.ctx, tx, MAX_FILE_BLOCKS, 1)
    with pytest.raises(InvalidArgument):
        rig.map.set(rig.ctx, tx, -1, 1)


def test_clear_returns_block():
    rig = Rig()
    rig.set(3, 9000)
    assert rig.clear(3) == 9000
    assert rig.map.get(3) is None
    assert rig.clear(3) is None


def test_mirror_survives_reload():
    rig = Rig()
    mapping = {0: 5000, 7: 5007, N_DIRECT + 2: 6002,
               N_DIRECT + PTRS_PER_BLOCK + 9: 7009}
    for fb, nvmm in mapping.items():
        rig.set(fb, nvmm)
    reloaded = rig.reload()
    assert dict(reloaded.mapped_blocks()) == mapping


def test_drop_all_frees_pointer_blocks():
    rig = Rig()
    rig.set(0, 5000)
    rig.set(N_DIRECT + 1, 6001)
    rig.set(N_DIRECT + PTRS_PER_BLOCK, 7000)
    tx = rig.journal.begin(rig.ctx)
    freed = rig.map.drop_all(rig.ctx, tx)
    rig.journal.commit(rig.ctx, tx)
    # 3 data blocks + indirect + dindirect + one L2 block.
    assert len(freed) == 6
    assert rig.map.block_count() == 0
    assert rig.reload().mapped_blocks() == []


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(
    st.tuples(st.booleans(),
              st.integers(min_value=0, max_value=N_DIRECT + 2 * PTRS_PER_BLOCK)),
    max_size=40,
))
def test_blockmap_matches_dict_and_reload(ops):
    """The map must behave like a dict, and the NVMM pointers must
    reproduce the exact same mapping after a reload."""
    rig = Rig()
    model = {}
    next_block = 5000
    for is_set, fb in ops:
        if is_set:
            rig.set(fb, next_block)
            model[fb] = next_block
            next_block += 1
        else:
            assert rig.clear(fb) == model.pop(fb, None)
    assert dict(rig.map.mapped_blocks()) == model
    assert dict(rig.reload().mapped_blocks()) == model

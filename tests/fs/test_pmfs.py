"""Functional tests for PMFS through the VFS syscall surface."""

import pytest

from repro.fs import flags as f
from repro.fs.errors import (
    BadFileDescriptor,
    ExistsError,
    IsADirectory,
    NotADirectory,
    NotEmpty,
    NotFound,
    ReadOnly,
)


def test_create_write_read_roundtrip(rig):
    fd = rig.vfs.open(rig.ctx, "/a.txt", f.O_RDWR | f.O_CREAT)
    rig.vfs.write(rig.ctx, fd, b"hello world")
    rig.vfs.lseek(rig.ctx, fd, 0)
    assert rig.vfs.read(rig.ctx, fd, 100) == b"hello world"
    rig.vfs.close(rig.ctx, fd)


def test_read_missing_file_raises(rig):
    with pytest.raises(NotFound):
        rig.vfs.open(rig.ctx, "/nope")


def test_pread_pwrite_at_offsets(rig):
    fd = rig.vfs.open(rig.ctx, "/f", f.O_RDWR | f.O_CREAT)
    rig.vfs.pwrite(rig.ctx, fd, 0, b"AAAA")
    rig.vfs.pwrite(rig.ctx, fd, 2, b"BB")
    assert rig.vfs.pread(rig.ctx, fd, 0, 4) == b"AABB"


def test_sparse_file_reads_zeroes(rig):
    fd = rig.vfs.open(rig.ctx, "/sparse", f.O_RDWR | f.O_CREAT)
    rig.vfs.pwrite(rig.ctx, fd, 10_000, b"tail")
    assert rig.vfs.pread(rig.ctx, fd, 0, 10) == b"\0" * 10
    assert rig.vfs.pread(rig.ctx, fd, 10_000, 4) == b"tail"
    assert rig.vfs.stat(rig.ctx, "/sparse").size == 10_004


def test_read_past_eof_is_short(rig):
    fd = rig.vfs.open(rig.ctx, "/f", f.O_RDWR | f.O_CREAT)
    rig.vfs.write(rig.ctx, fd, b"12345")
    assert rig.vfs.pread(rig.ctx, fd, 3, 100) == b"45"
    assert rig.vfs.pread(rig.ctx, fd, 5, 100) == b""
    assert rig.vfs.pread(rig.ctx, fd, 50, 10) == b""


def test_multiblock_write_spans_blocks(rig):
    payload = bytes(i % 251 for i in range(3 * 4096 + 123))
    rig.vfs.write_file(rig.ctx, "/big", payload)
    assert rig.vfs.read_file(rig.ctx, "/big") == payload


def test_large_file_uses_indirect_blocks(rig):
    # > 12 direct blocks => single-indirect territory.
    payload = bytes(i % 256 for i in range(20 * 4096))
    rig.vfs.write_file(rig.ctx, "/indirect", payload)
    assert rig.vfs.read_file(rig.ctx, "/indirect") == payload


def test_overwrite_preserves_rest(rig):
    rig.vfs.write_file(rig.ctx, "/f", b"x" * 8192)
    fd = rig.vfs.open(rig.ctx, "/f")
    rig.vfs.pwrite(rig.ctx, fd, 4000, b"YY")
    data = rig.vfs.read_file(rig.ctx, "/f")
    assert data[3999:4003] == b"xYYx"
    assert len(data) == 8192


def test_mkdir_and_nested_paths(rig):
    rig.vfs.mkdir(rig.ctx, "/d1")
    rig.vfs.mkdir(rig.ctx, "/d1/d2")
    rig.vfs.write_file(rig.ctx, "/d1/d2/file", b"deep")
    assert rig.vfs.read_file(rig.ctx, "/d1/d2/file") == b"deep"
    names = dict(rig.vfs.readdir(rig.ctx, "/d1"))
    assert "d2" in names


def test_mkdir_existing_raises(rig):
    rig.vfs.mkdir(rig.ctx, "/d")
    with pytest.raises(ExistsError):
        rig.vfs.mkdir(rig.ctx, "/d")


def test_unlink_removes_file(rig):
    rig.vfs.write_file(rig.ctx, "/victim", b"bye")
    rig.vfs.unlink(rig.ctx, "/victim")
    assert not rig.vfs.exists(rig.ctx, "/victim")
    with pytest.raises(NotFound):
        rig.vfs.unlink(rig.ctx, "/victim")


def test_unlink_frees_blocks_for_reuse(rig):
    # Warm the root directory's dirent block so it doesn't skew the count.
    rig.vfs.write_file(rig.ctx, "/warm", b"w")
    rig.vfs.unlink(rig.ctx, "/warm")
    free_before = rig.fs.balloc.free_count
    rig.vfs.write_file(rig.ctx, "/v", b"z" * (64 * 4096))
    assert rig.fs.balloc.free_count < free_before
    rig.vfs.unlink(rig.ctx, "/v")
    assert rig.fs.balloc.free_count == free_before


def test_unlink_directory_raises(rig):
    rig.vfs.mkdir(rig.ctx, "/d")
    with pytest.raises(IsADirectory):
        rig.vfs.unlink(rig.ctx, "/d")


def test_rmdir_empty_only(rig):
    rig.vfs.mkdir(rig.ctx, "/d")
    rig.vfs.write_file(rig.ctx, "/d/f", b"x")
    with pytest.raises(NotEmpty):
        rig.vfs.rmdir(rig.ctx, "/d")
    rig.vfs.unlink(rig.ctx, "/d/f")
    rig.vfs.rmdir(rig.ctx, "/d")
    assert not rig.vfs.exists(rig.ctx, "/d")


def test_rmdir_file_raises(rig):
    rig.vfs.write_file(rig.ctx, "/f", b"x")
    with pytest.raises(NotADirectory):
        rig.vfs.rmdir(rig.ctx, "/f")


def test_open_trunc_discards_contents(rig):
    rig.vfs.write_file(rig.ctx, "/f", b"old contents")
    fd = rig.vfs.open(rig.ctx, "/f", f.O_RDWR | f.O_TRUNC)
    assert rig.vfs.stat(rig.ctx, "/f").size == 0
    rig.vfs.write(rig.ctx, fd, b"new")
    assert rig.vfs.read_file(rig.ctx, "/f") == b"new"


def test_truncate_shrink_then_read(rig):
    rig.vfs.write_file(rig.ctx, "/f", b"a" * 10_000)
    rig.vfs.truncate(rig.ctx, "/f", 5_000)
    data = rig.vfs.read_file(rig.ctx, "/f")
    assert data == b"a" * 5_000


def test_truncate_grow_pads_zeroes(rig):
    rig.vfs.write_file(rig.ctx, "/f", b"ab")
    rig.vfs.truncate(rig.ctx, "/f", 10)
    assert rig.vfs.read_file(rig.ctx, "/f") == b"ab" + b"\0" * 8


def test_append_flag(rig):
    rig.vfs.write_file(rig.ctx, "/log", b"one\n")
    fd = rig.vfs.open(rig.ctx, "/log", f.O_RDWR | f.O_APPEND)
    rig.vfs.write(rig.ctx, fd, b"two\n")
    assert rig.vfs.read_file(rig.ctx, "/log") == b"one\ntwo\n"


def test_write_on_readonly_fd_raises(rig):
    rig.vfs.write_file(rig.ctx, "/f", b"x")
    fd = rig.vfs.open(rig.ctx, "/f", f.O_RDONLY)
    with pytest.raises(ReadOnly):
        rig.vfs.write(rig.ctx, fd, b"nope")


def test_read_on_writeonly_fd_raises(rig):
    rig.vfs.write_file(rig.ctx, "/f", b"x")
    fd = rig.vfs.open(rig.ctx, "/f", f.O_WRONLY)
    with pytest.raises(ReadOnly):
        rig.vfs.read(rig.ctx, fd, 1)


def test_bad_fd_raises(rig):
    with pytest.raises(BadFileDescriptor):
        rig.vfs.fsync(rig.ctx, 99)


def test_close_invalidates_fd(rig):
    fd = rig.vfs.open(rig.ctx, "/f", f.O_CREAT | f.O_RDWR)
    rig.vfs.close(rig.ctx, fd)
    with pytest.raises(BadFileDescriptor):
        rig.vfs.read(rig.ctx, fd, 1)


def test_fsync_is_cheap_on_pmfs(rig):
    fd = rig.vfs.open(rig.ctx, "/f", f.O_CREAT | f.O_RDWR)
    rig.vfs.write(rig.ctx, fd, b"data")
    before = rig.ctx.now
    rig.vfs.fsync(rig.ctx, fd)
    # Data is already durable; fsync costs only syscall + fence.
    assert rig.ctx.now - before < 5_000


def test_stat_reports_sizes_and_kind(rig):
    rig.vfs.mkdir(rig.ctx, "/d")
    rig.vfs.write_file(rig.ctx, "/d/f", b"12345")
    st = rig.vfs.stat(rig.ctx, "/d/f")
    assert st.size == 5 and not st.is_dir
    assert rig.vfs.stat(rig.ctx, "/d").is_dir


def test_write_charges_nvmm_latency(rig):
    fd = rig.vfs.open(rig.ctx, "/f", f.O_CREAT | f.O_RDWR)
    before = rig.ctx.now
    rig.vfs.pwrite(rig.ctx, fd, 0, b"z" * 4096)
    elapsed = rig.ctx.now - before
    # 64 lines * 200 ns = 12.8 us of data persistence dominates.
    assert elapsed >= 64 * 200


def test_writes_durable_across_remount(rig):
    rig.vfs.write_file(rig.ctx, "/keep", b"persist me" * 100)
    rig.vfs.mkdir(rig.ctx, "/dir")
    rig.vfs.write_file(rig.ctx, "/dir/nested", b"nested")
    rig.vfs.unmount(rig.ctx)
    rig.remount()
    assert rig.vfs.read_file(rig.ctx, "/keep") == b"persist me" * 100
    assert rig.vfs.read_file(rig.ctx, "/dir/nested") == b"nested"


def test_remount_preserves_free_space_accounting(rig):
    rig.vfs.write_file(rig.ctx, "/f", b"q" * (16 * 4096))
    used_before = rig.fs.balloc.used_count
    rig.vfs.unmount(rig.ctx)
    rig.remount()
    assert rig.fs.balloc.used_count == used_before


def test_many_files_in_one_directory(rig):
    for i in range(200):
        rig.vfs.write_file(rig.ctx, "/file%03d" % i, b"#%d" % i)
    assert len(rig.vfs.readdir(rig.ctx, "/")) == 200
    assert rig.vfs.read_file(rig.ctx, "/file123") == b"#123"


def test_pmfs_writes_are_durable_without_fsync(rig):
    """Direct access: a completed write survives an immediate crash."""
    rig.vfs.write_file(rig.ctx, "/d", b"durable" * 10)
    rig.crash_and_remount()
    assert rig.vfs.read_file(rig.ctx, "/d") == b"durable" * 10

"""O_APPEND / O_TRUNC interactions and truncate-extend zero-fill.

Parametrized across the paper's five comparison file systems: the flag
semantics live at the VFS boundary and must be identical no matter
which data path sits below.
"""

import pytest

from repro.bench.runner import build_stack
from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.fs import flags as f
from repro.nvmm.config import NVMMConfig

FIVE_FS = ("hinfs", "pmfs", "ext4-dax", "ext2-nvmmbd", "ext4-nvmmbd")


@pytest.fixture(params=FIVE_FS)
def stack(request):
    env = SimEnv()
    fs, vfs = build_stack(env, request.param, NVMMConfig(), 48 << 20)
    return vfs, ExecContext(env, "t")


def test_o_append_writes_land_at_eof(stack):
    vfs, ctx = stack
    vfs.write_file(ctx, "/log", b"start|")
    fd = vfs.open(ctx, "/log", f.O_WRONLY | f.O_APPEND)
    vfs.write(ctx, fd, b"one|")
    # A concurrent-style extension through another descriptor: O_APPEND
    # must re-seek to the *current* EOF on every write.
    other = vfs.open(ctx, "/log", f.O_RDWR)
    vfs.pwrite(ctx, other, vfs.fstat(ctx, other).size, b"two|")
    vfs.write(ctx, fd, b"three|")
    assert vfs.read_file(ctx, "/log") == b"start|one|two|three|"


def test_o_trunc_discards_existing_contents(stack):
    vfs, ctx = stack
    vfs.write_file(ctx, "/f", b"x" * 9000)
    fd = vfs.open(ctx, "/f", f.O_RDWR | f.O_TRUNC)
    assert vfs.fstat(ctx, fd).size == 0
    vfs.write(ctx, fd, b"new")
    assert vfs.read_file(ctx, "/f") == b"new"


def test_o_trunc_readonly_open_does_not_truncate(stack):
    vfs, ctx = stack
    vfs.write_file(ctx, "/keep", b"precious")
    fd = vfs.open(ctx, "/keep", f.O_RDONLY | f.O_TRUNC)
    assert vfs.fstat(ctx, fd).size == 8
    assert vfs.read(ctx, fd, 100) == b"precious"


def test_o_append_plus_o_trunc_truncates_then_appends(stack):
    vfs, ctx = stack
    vfs.write_file(ctx, "/both", b"y" * 5000)
    fd = vfs.open(ctx, "/both", f.O_RDWR | f.O_TRUNC | f.O_APPEND)
    assert vfs.fstat(ctx, fd).size == 0
    vfs.write(ctx, fd, b"a")
    vfs.pwrite(ctx, fd, 100, b"b")  # pwrite ignores O_APPEND
    vfs.write(ctx, fd, b"c")  # ...but write() appends at the new EOF
    assert vfs.fstat(ctx, fd).size == 102
    data = vfs.read_file(ctx, "/both")
    assert data[0:1] == b"a" and data[100:102] == b"bc"
    assert data[1:100] == b"\0" * 99


def test_truncate_extend_zero_fills(stack):
    vfs, ctx = stack
    vfs.write_file(ctx, "/grow", b"seed")
    vfs.truncate(ctx, "/grow", 10_000)
    assert vfs.stat(ctx, "/grow").size == 10_000
    data = vfs.read_file(ctx, "/grow")
    assert data[:4] == b"seed"
    assert data[4:] == b"\0" * 9996
    # Shrink then re-extend: the stale tail must not resurface.
    fd = vfs.open(ctx, "/grow", f.O_RDWR)
    vfs.pwrite(ctx, fd, 8000, b"Z" * 100)
    vfs.truncate(ctx, "/grow", 2)
    vfs.truncate(ctx, "/grow", 9000)
    data = vfs.read_file(ctx, "/grow")
    assert data[:2] == b"se"
    assert data[2:] == b"\0" * 8998

"""Unit tests for the jbd2 journal model and the NVMMBD block device."""

import pytest

from repro.blockdev.nvmmbd import NVMMBlockDevice
from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.fs.extfs.jbd2 import JBD2CommitTask, JBD2Journal
from repro.nvmm.config import BLOCK_SIZE, NVMMConfig

SEC = 1_000_000_000


class Rig:
    def __init__(self):
        self.env = SimEnv()
        self.config = NVMMConfig()
        self.ctx = ExecContext(self.env, "t")
        self.written = []
        self.flushed_inos = []
        self.journal = JBD2Journal(self.env, self._write_block)
        self.journal.ordered_flush_fn = self._ordered_flush

    def _write_block(self, ctx, data):
        self.written.append(data)

    def _ordered_flush(self, ctx, ino):
        self.flushed_inos.append(ino)


def test_commit_writes_descriptor_metadata_commit():
    rig = Rig()
    rig.journal.dirty_metadata(rig.ctx, [("it", 1), ("bm", 0)])
    blocks = rig.journal.commit(rig.ctx)
    assert blocks == 4  # descriptor + 2 metadata + commit
    assert len(rig.written) == 4


def test_duplicate_metadata_blocks_deduplicated():
    rig = Rig()
    for _ in range(100):
        rig.journal.dirty_metadata(rig.ctx, [("it", 1)])
    assert rig.journal.pending_blocks == 1
    assert rig.journal.commit(rig.ctx) == 3


def test_empty_commit_is_free():
    rig = Rig()
    assert rig.journal.commit(rig.ctx) == 0
    assert rig.written == []


def test_ordered_mode_flushes_data_first():
    rig = Rig()
    rig.journal.dirty_metadata(rig.ctx, [("it", 1)], ino=7)
    rig.journal.dirty_metadata(rig.ctx, [("it", 2)], ino=3)
    rig.journal.commit(rig.ctx)
    assert rig.flushed_inos == [3, 7]


def test_auto_commit_at_max_blocks():
    rig = Rig()
    rig.journal.max_blocks = 4
    for i in range(4):
        rig.journal.dirty_metadata(rig.ctx, [("it", i)])
    assert rig.journal.pending_blocks == 0  # auto-committed
    assert rig.env.stats.count("jbd2_commits") == 1


def test_periodic_commit_task():
    rig = Rig()
    task = JBD2CommitTask(rig.env, rig.journal)
    rig.env.background.register(task)
    rig.journal.dirty_metadata(rig.ctx, [("it", 1)])
    rig.env.background.advance_to(4 * SEC)
    assert rig.journal.pending_blocks == 1  # 5 s not reached
    rig.env.background.advance_to(6 * SEC)
    assert rig.journal.pending_blocks == 0


def test_blockdev_roundtrip_and_costs():
    env = SimEnv()
    config = NVMMConfig()
    bdev = NVMMBlockDevice(env, config, 1 << 20)
    ctx = ExecContext(env, "t")
    payload = bytes(range(256)) * 16
    bdev.write_block(ctx, 3, payload)
    write_time = ctx.now
    assert bdev.read_block(ctx, 3) == payload
    # A block write pays block layer + 64 cacheline persists.
    assert write_time >= config.block_layer_ns + 64 * config.nvmm_write_latency_ns
    assert env.stats.count("bio_writes") == 1
    assert env.stats.count("bio_reads") == 1


def test_blockdev_bad_block_rejected():
    env = SimEnv()
    bdev = NVMMBlockDevice(env, NVMMConfig(), 1 << 20)
    ctx = ExecContext(env, "t")
    with pytest.raises(IndexError):
        bdev.read_block(ctx, 10_000)
    with pytest.raises(ValueError):
        bdev.write_block(ctx, 0, b"short")


def test_blockdev_write_is_durable():
    env = SimEnv()
    bdev = NVMMBlockDevice(env, NVMMConfig(), 1 << 20)
    ctx = ExecContext(env, "t")
    bdev.write_block(ctx, 1, b"\xaa" * BLOCK_SIZE)
    bdev.crash()
    assert bdev.read_block(ctx, 1) == b"\xaa" * BLOCK_SIZE

"""Per-inode VFS locking: contention, accounting, and lock ordering.

Inode locks live on the virtual timeline: a contended acquisition
advances the waiter's clock to the holder's release point.  Same-file
writers therefore serialise (and the wait is counted), while
disjoint-file writers overlap untouched -- the property the
thread-scalability experiment depends on.
"""

import pytest

from repro.engine.context import ExecContext
from repro.engine.errors import DeadlockError
from repro.engine.scheduler import Scheduler
from repro.fs import flags as f
from repro.obs.trace import LAYER_LOCK


def write_body(vfs, path, rounds, size=4096):
    def body(ctx):
        fd = vfs.open(ctx, path, f.O_CREAT | f.O_RDWR)
        for i in range(rounds):
            vfs.pwrite(ctx, fd, i * size, b"x" * size)
            yield
        vfs.close(ctx, fd)

    return body


def test_same_file_writers_contend(rig):
    sched = Scheduler(rig.env)
    sched.spawn("w0", write_body(rig.vfs, "/shared", 20))
    sched.spawn("w1", write_body(rig.vfs, "/shared", 20))
    sched.run()
    assert rig.env.stats.count("lock_contentions") > 0
    assert rig.env.stats.count("lock_wait_ns") > 0


def test_disjoint_file_writers_do_not_contend(rig):
    sched = Scheduler(rig.env)
    sched.spawn("w0", write_body(rig.vfs, "/a", 20))
    sched.spawn("w1", write_body(rig.vfs, "/b", 20))
    sched.run()
    assert rig.env.stats.count("lock_contentions") == 0
    assert rig.env.stats.count("lock_wait_ns") == 0
    assert rig.env.stats.count("lock_acquisitions") > 0


def test_reads_overlap_on_one_file(rig):
    rig.vfs.write_file(rig.ctx, "/hot", b"z" * 8192)
    start = rig.ctx.now  # readers begin after the prep writes' release

    def read_body(ctx):
        ctx.clock.advance_to(start)
        fd = rig.vfs.open(ctx, "/hot", f.O_RDONLY)
        for i in range(10):
            rig.vfs.pread(ctx, fd, 0, 4096)
            yield
        rig.vfs.close(ctx, fd)

    sched = Scheduler(rig.env)
    sched.spawn("r0", read_body)
    sched.spawn("r1", read_body)
    sched.run()
    assert rig.env.stats.count("lock_contentions") == 0


def test_contended_wait_lands_in_lock_layer_time(rig):
    rig.env.enable_tracing(1 << 12)
    sched = Scheduler(rig.env)
    sched.spawn("w0", write_body(rig.vfs, "/shared", 20))
    sched.spawn("w1", write_body(rig.vfs, "/shared", 20))
    sched.run()
    assert rig.env.stats.layer_time_ns[LAYER_LOCK] > 0
    assert (rig.env.stats.layer_time_ns[LAYER_LOCK]
            == rig.env.stats.count("lock_wait_ns"))


def test_writer_defers_fsync_of_same_file(rig):
    rig.vfs.write_file(rig.ctx, "/f", b"a" * 4096)
    ino = rig.vfs.stat(rig.ctx, "/f").ino
    release = rig.vfs.ilocks.lock(ino)._write_free_at
    assert release > 0
    late = ExecContext(rig.env, "late")  # starts at t=0, behind the writer
    fd2 = rig.vfs.open(late, "/f", f.O_RDWR)
    rig.vfs.fsync(late, fd2)
    # The fsync could not run inside the writer's exclusive section: its
    # clock was pushed past the last write-lock release.
    assert late.now >= release
    assert rig.env.stats.count("lock_contentions") > 0
    rig.vfs.close(late, fd2)


def test_rename_locks_in_canonical_order(rig, monkeypatch):
    rig.vfs.write_file(rig.ctx, "/x", b"1")
    rig.vfs.write_file(rig.ctx, "/y", b"2")
    seen = []
    real = rig.fs.rename

    def spy(ctx, *args, **kwargs):
        seen.append(list(ctx.held_locks))
        return real(ctx, *args, **kwargs)

    monkeypatch.setattr(rig.fs, "rename", spy)
    rig.vfs.rename(rig.ctx, "/x", "/y")
    (held,) = seen
    inos = [ino for ino, _mode in held]
    assert inos == sorted(inos)
    assert all(mode == "write" for _ino, mode in held)
    # Parents, the moved inode, and the replaced victim are all covered.
    assert len(inos) >= 3


def test_cross_renames_both_succeed(rig):
    """a->b and b->a from two threads: the sorted lock set means both
    orders acquire the same sequence, so neither can deadlock."""
    rig.vfs.write_file(rig.ctx, "/a", b"a")
    rig.vfs.write_file(rig.ctx, "/b", b"b")

    def renamer(old, new):
        def body(ctx):
            rig.vfs.rename(ctx, old, new)
            yield

        return body

    sched = Scheduler(rig.env)
    sched.spawn("r0", renamer("/a", "/b"))
    sched.spawn("r1", renamer("/b", "/a"))
    sched.run()
    # One direction replaced the other's source; exactly one name is left.
    left = {name for name in ("/a", "/b")
            if rig.vfs.exists(rig.ctx, name)}
    assert len(left) == 1


def test_unlink_locks_parent_and_child(rig, monkeypatch):
    rig.vfs.write_file(rig.ctx, "/victim", b"v")
    seen = []
    real = rig.fs.unlink

    def spy(ctx, *args, **kwargs):
        seen.append(list(ctx.held_locks))
        return real(ctx, *args, **kwargs)

    monkeypatch.setattr(rig.fs, "unlink", spy)
    rig.vfs.unlink(rig.ctx, "/victim")
    (held,) = seen
    inos = [ino for ino, _mode in held]
    assert len(inos) == 2
    assert inos == sorted(inos)


def test_misordered_manual_acquisition_is_diagnosed(rig):
    """Lockdep at the VFS boundary: taking a lower inode while holding a
    higher one raises immediately, naming both locks."""
    rig.vfs.write_file(rig.ctx, "/p", b"p")
    rig.vfs.write_file(rig.ctx, "/q", b"q")
    lo = rig.vfs.stat(rig.ctx, "/p").ino
    hi = rig.vfs.stat(rig.ctx, "/q").ino
    assert lo < hi
    with rig.vfs.ilocks.write_locked(rig.ctx, hi):
        with pytest.raises(DeadlockError, match="lowest-inode-first"):
            with rig.vfs.ilocks.write_locked(rig.ctx, lo):
                pass

"""Tests for direct memory-mapped I/O (paper Section 4.2)."""

import pytest

from repro.core import HiNFS, HiNFSConfig
from repro.fs import flags as f
from repro.fs.errors import InvalidArgument, IsADirectory

from tests.fs.conftest import PmfsRig


@pytest.fixture()
def rig():
    return PmfsRig()


@pytest.fixture()
def hrig():
    return PmfsRig(fs_cls=HiNFS, hconfig=HiNFSConfig(buffer_bytes=2 << 20))


def fmap(rig, path, flags=0, **kwargs):
    """open + mmap(2): the fd-based mapping call."""
    fd = rig.vfs.open(rig.ctx, path, f.O_RDWR)
    return rig.vfs.mmap(rig.ctx, fd, flags=flags, **kwargs)


def test_mmap_read_sees_file_data(rig):
    rig.vfs.write_file(rig.ctx, "/m", b"mapped bytes" * 100)
    region = fmap(rig, "/m")
    assert region.read(rig.ctx, 0, 12) == b"mapped bytes"
    assert region.read(rig.ctx, 12, 12) == b"mapped bytes"


def test_mmap_write_visible_through_file_io(rig):
    rig.vfs.write_file(rig.ctx, "/m", b"x" * 4096)
    region = fmap(rig, "/m")
    region.write(rig.ctx, 100, b"STORE")
    assert rig.vfs.read_file(rig.ctx, "/m")[100:105] == b"STORE"


def test_mmap_write_volatile_until_msync(rig):
    rig.vfs.write_file(rig.ctx, "/m", b"x" * 4096)
    region = fmap(rig, "/m")
    region.write(rig.ctx, 0, b"GONE")
    rig.crash_and_remount()
    assert rig.vfs.read_file(rig.ctx, "/m")[:4] == b"xxxx"


def test_msync_makes_stores_durable(rig):
    rig.vfs.write_file(rig.ctx, "/m", b"x" * 4096)
    region = fmap(rig, "/m")
    region.write(rig.ctx, 0, b"KEPT")
    rig.vfs.msync(rig.ctx, region)
    rig.crash_and_remount()
    assert rig.vfs.read_file(rig.ctx, "/m")[:4] == b"KEPT"


def test_mmap_extends_file_on_store_past_eof(rig):
    rig.vfs.write_file(rig.ctx, "/m", b"ab")
    region = fmap(rig, "/m")
    region.write(rig.ctx, 10_000, b"tail")
    assert rig.vfs.stat(rig.ctx, "/m").size == 10_004
    assert region.read(rig.ctx, 10_000, 4) == b"tail"


def test_mmap_hole_reads_zeroes(rig):
    rig.vfs.write_file(rig.ctx, "/m", b"")
    rig.vfs.truncate(rig.ctx, "/m", 8192)
    region = fmap(rig, "/m")
    assert region.read(rig.ctx, 0, 100) == b"\0" * 100


def test_munmap_implies_msync_and_closes(rig):
    rig.vfs.write_file(rig.ctx, "/m", b"x" * 64)
    region = fmap(rig, "/m")
    region.write(rig.ctx, 0, b"SYNC")
    rig.vfs.munmap(rig.ctx, region)
    with pytest.raises(InvalidArgument):
        region.read(rig.ctx, 0, 4)
    rig.crash_and_remount()
    assert rig.vfs.read_file(rig.ctx, "/m")[:4] == b"SYNC"


def test_mmap_directory_rejected(rig):
    rig.vfs.mkdir(rig.ctx, "/d")
    # The descriptor layer already refuses to open a directory...
    with pytest.raises(IsADirectory):
        rig.vfs.open(rig.ctx, "/d", f.O_RDWR)
    # ...and the inode-level guard holds for below-VFS callers too.
    ino = rig.vfs.stat(rig.ctx, "/d").ino
    with pytest.raises(IsADirectory):
        rig.fs.mmap(rig.ctx, ino)


def test_mmap_of_bad_fd_rejected(rig):
    from repro.fs.errors import BadFileDescriptor

    with pytest.raises(BadFileDescriptor):
        rig.vfs.mmap(rig.ctx, 999)


def test_truncate_invalidates_dirty_ranges_past_eof(rig):
    """Regression: a truncate under a live mapping frees blocks past the
    new EOF; stale dirty ranges must not make msync flush -- or keep
    addresses into -- blocks the file no longer owns."""
    rig.vfs.write_file(rig.ctx, "/m", b"x" * (3 * 4096))
    region = fmap(rig, "/m")
    region.write(rig.ctx, 0, b"HEAD")
    region.write(rig.ctx, 2 * 4096, b"TAIL")   # will fall past new EOF
    assert len(region._dirty_ranges) == 2
    rig.vfs.truncate(rig.ctx, "/m", 4096)
    # Only the surviving range remains; msync flushes just that one.
    assert [r[0] for r in region._dirty_ranges] == [0]
    assert region.msync(rig.ctx) == 1
    assert rig.vfs.read_file(rig.ctx, "/m")[:4] == b"HEAD"


def test_truncate_clamps_straddling_dirty_range(rig):
    rig.vfs.write_file(rig.ctx, "/m", b"x" * 8192)
    region = fmap(rig, "/m")
    region.write(rig.ctx, 4090, b"A" * 12)     # straddles the 4096 cut
    rig.vfs.truncate(rig.ctx, "/m", 4096)
    (file_offset, _addr, length), = region._dirty_ranges
    assert (file_offset, length) == (4090, 6)
    region.msync(rig.ctx)


def test_hinfs_mmap_flushes_buffered_blocks(hrig):
    hrig.vfs.write_file(hrig.ctx, "/m", b"buffered" * 512)  # lazy, in DRAM
    assert hrig.fs.buffer.used_blocks > 0
    region = fmap(hrig, "/m")
    assert hrig.fs.buffer.file_blocks(hrig.vfs.stat(hrig.ctx, "/m").ino) == []
    assert region.read(hrig.ctx, 0, 8) == b"buffered"


def test_hinfs_mmapped_file_writes_bypass_buffer(hrig):
    hrig.vfs.write_file(hrig.ctx, "/m", b"x" * 4096)
    region = fmap(hrig, "/m")
    eager_before = hrig.env.stats.count("hinfs_eager_writes")
    fd = hrig.vfs.open(hrig.ctx, "/m")
    hrig.vfs.pwrite(hrig.ctx, fd, 0, b"direct!")
    assert hrig.env.stats.count("hinfs_eager_writes") == eager_before + 1
    # And the store is immediately durable (no buffer staging).
    hrig.crash_and_remount()
    assert hrig.vfs.read_file(hrig.ctx, "/m")[:7] == b"direct!"
    assert region is not None


def test_hinfs_munmap_unpins(hrig):
    hrig.vfs.write_file(hrig.ctx, "/m", b"x" * 4096)
    ino = hrig.vfs.stat(hrig.ctx, "/m").ino
    region = fmap(hrig, "/m")
    assert ino in hrig.fs._mmapped
    hrig.vfs.munmap(hrig.ctx, region)
    assert ino not in hrig.fs._mmapped


def test_hinfs_stays_pinned_while_second_mapping_lives(hrig):
    hrig.vfs.write_file(hrig.ctx, "/m", b"x" * 4096)
    ino = hrig.vfs.stat(hrig.ctx, "/m").ino
    first = fmap(hrig, "/m")
    second = fmap(hrig, "/m")
    hrig.vfs.munmap(hrig.ctx, first)
    assert ino in hrig.fs._mmapped
    hrig.vfs.munmap(hrig.ctx, second)
    assert ino not in hrig.fs._mmapped

"""Functional tests for EXT2/EXT4 on NVMMBD and for EXT4-DAX."""

import pytest

from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.fs import flags as f
from repro.fs.ext4dax import Ext4Dax
from repro.fs.extfs import Ext2, Ext4
from repro.fs.vfs import VFS
from repro.nvmm.config import NVMMConfig
from repro.nvmm.device import NVMMDevice


class ExtRig:
    def __init__(self, fs_cls, size=16 << 20, cache_pages=512):
        self.env = SimEnv()
        self.config = NVMMConfig()
        self.fs = fs_cls(self.env, self.config, size, cache_pages=cache_pages)
        self.vfs = VFS(self.env, self.fs, self.config)
        self.ctx = ExecContext(self.env, "t")


@pytest.fixture(params=[Ext2, Ext4], ids=["ext2", "ext4"])
def rig(request):
    return ExtRig(request.param)


def test_roundtrip(rig):
    rig.vfs.write_file(rig.ctx, "/a", b"block-based bytes" * 100)
    assert rig.vfs.read_file(rig.ctx, "/a") == b"block-based bytes" * 100


def test_overwrite_partial_page(rig):
    rig.vfs.write_file(rig.ctx, "/f", b"x" * 8192)
    fd = rig.vfs.open(rig.ctx, "/f")
    rig.vfs.pwrite(rig.ctx, fd, 4090, b"ABCDEFGH")
    data = rig.vfs.read_file(rig.ctx, "/f")
    assert data[4090:4098] == b"ABCDEFGH"
    assert data[:4090] == b"x" * 4090


def test_read_survives_cache_eviction(rig):
    # More data than the 512-page cache: early pages must be refetched
    # from the device (their dirty copies flushed at eviction).
    payload = bytes(i % 256 for i in range(1024 * 4096))
    rig.vfs.write_file(rig.ctx, "/big", payload, chunk=1 << 16)
    assert rig.vfs.read_file(rig.ctx, "/big") == payload
    assert rig.env.stats.count("pagecache_dirty_evictions") > 0


def test_unlink_and_space_reuse(rig):
    free0 = rig.fs.balloc.free_count
    rig.vfs.write_file(rig.ctx, "/v", b"q" * (64 * 4096))
    rig.vfs.fsync_path = None
    rig.vfs.unlink(rig.ctx, "/v")
    assert rig.fs.balloc.free_count == free0


def test_fsync_writes_through_block_layer(rig):
    fd = rig.vfs.open(rig.ctx, "/s", f.O_CREAT | f.O_RDWR)
    rig.vfs.write(rig.ctx, fd, b"w" * 4096)
    bio_before = rig.env.stats.count("bio_writes")
    rig.vfs.fsync(rig.ctx, fd)
    assert rig.env.stats.count("bio_writes") > bio_before


def test_directories(rig):
    rig.vfs.mkdir(rig.ctx, "/d")
    rig.vfs.write_file(rig.ctx, "/d/x", b"1")
    assert dict(rig.vfs.readdir(rig.ctx, "/d")) == {
        "x": rig.vfs.stat(rig.ctx, "/d/x").ino
    }


def test_truncate(rig):
    rig.vfs.write_file(rig.ctx, "/t", b"z" * 10000)
    rig.vfs.truncate(rig.ctx, "/t", 100)
    assert rig.vfs.read_file(rig.ctx, "/t") == b"z" * 100


def test_ext4_journals_on_fsync():
    rig = ExtRig(Ext4)
    fd = rig.vfs.open(rig.ctx, "/j", f.O_CREAT | f.O_RDWR)
    rig.vfs.write(rig.ctx, fd, b"data")
    rig.vfs.fsync(rig.ctx, fd)
    assert rig.env.stats.count("jbd2_commits") >= 1
    assert rig.env.stats.count("jbd2_blocks") >= 3


def test_ext2_never_journals():
    rig = ExtRig(Ext2)
    fd = rig.vfs.open(rig.ctx, "/j", f.O_CREAT | f.O_RDWR)
    rig.vfs.write(rig.ctx, fd, b"data")
    rig.vfs.fsync(rig.ctx, fd)
    assert rig.env.stats.count("jbd2_commits") == 0


def test_ext2_fsync_cheaper_than_ext4():
    times = {}
    for cls in (Ext2, Ext4):
        rig = ExtRig(cls)
        fd = rig.vfs.open(rig.ctx, "/f", f.O_CREAT | f.O_RDWR)
        t0 = rig.ctx.now
        for i in range(50):
            rig.vfs.pwrite(rig.ctx, fd, i * 4096, b"y" * 4096)
            rig.vfs.fsync(rig.ctx, fd)
        times[cls.name] = rig.ctx.now - t0
    assert times["ext2"] < times["ext4"]


def test_double_copy_read_slower_than_pmfs():
    """Figure 7 webserver effect: a cold read through the page cache and
    block layer costs much more than a PMFS direct read."""
    from tests.fs.conftest import PmfsRig

    ext = ExtRig(Ext2)
    payload = b"r" * (256 * 4096)
    ext.vfs.write_file(ext.ctx, "/r", payload, chunk=1 << 16)
    ext.vfs.unmount(ext.ctx)
    ext.fs.cache.drop_file(ext.vfs.stat(ext.ctx, "/r").ino)  # cold cache
    t0 = ext.ctx.now
    assert ext.vfs.read_file(ext.ctx, "/r", chunk=1 << 16) == payload
    ext_time = ext.ctx.now - t0

    pm = PmfsRig()
    pm.vfs.write_file(pm.ctx, "/r", payload, chunk=1 << 16)
    t0 = pm.ctx.now
    assert pm.vfs.read_file(pm.ctx, "/r", chunk=1 << 16) == payload
    pmfs_time = pm.ctx.now - t0
    assert ext_time > 2 * pmfs_time


class DaxRig:
    def __init__(self, size=16 << 20):
        self.env = SimEnv()
        self.config = NVMMConfig()
        self.device = NVMMDevice(self.env, self.config, size)
        self.fs = Ext4Dax(self.env, self.device, self.config)
        self.vfs = VFS(self.env, self.fs, self.config)
        self.ctx = ExecContext(self.env, "t")


def test_ext4dax_roundtrip():
    rig = DaxRig()
    rig.vfs.write_file(rig.ctx, "/a", b"dax" * 1000)
    assert rig.vfs.read_file(rig.ctx, "/a") == b"dax" * 1000


def test_ext4dax_metadata_ops_slower_than_pmfs():
    """Varmail effect: create/delete-heavy work costs more on EXT4-DAX."""
    from tests.fs.conftest import PmfsRig

    dax = DaxRig()
    t0 = dax.ctx.now
    for i in range(50):
        fd = dax.vfs.open(dax.ctx, "/f%d" % i, f.O_CREAT | f.O_RDWR)
        dax.vfs.write(dax.ctx, fd, b"m" * 128)
        dax.vfs.fsync(dax.ctx, fd)
        dax.vfs.close(dax.ctx, fd)
    dax_time = dax.ctx.now - t0

    pm = PmfsRig()
    t0 = pm.ctx.now
    for i in range(50):
        fd = pm.vfs.open(pm.ctx, "/f%d" % i, f.O_CREAT | f.O_RDWR)
        pm.vfs.write(pm.ctx, fd, b"m" * 128)
        pm.vfs.fsync(pm.ctx, fd)
        pm.vfs.close(pm.ctx, fd)
    pmfs_time = pm.ctx.now - t0
    assert dax_time > 1.3 * pmfs_time


def test_ext4dax_data_path_matches_pmfs_cost():
    from tests.fs.conftest import PmfsRig

    dax = DaxRig()
    pm = PmfsRig()
    payload = b"d" * (64 * 4096)
    t0 = dax.ctx.now
    dax.vfs.write_file(dax.ctx, "/f", payload)
    dax_time = dax.ctx.now - t0
    t0 = pm.ctx.now
    pm.vfs.write_file(pm.ctx, "/f", payload)
    pmfs_time = pm.ctx.now - t0
    # Within 20 %: the data path is the same direct NVMM copy.
    assert dax_time == pytest.approx(pmfs_time, rel=0.2)

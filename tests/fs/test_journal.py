"""Journal unit tests and crash-recovery tests."""

import pytest

from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.fs.pmfs.journal import (
    ENTRY_PAYLOAD_MAX,
    Journal,
    JournalFullError,
)
from repro.fs.pmfs.layout import Superblock, block_addr
from repro.nvmm.config import NVMMConfig
from repro.nvmm.device import NVMMDevice


@pytest.fixture()
def setup():
    env = SimEnv()
    cfg = NVMMConfig()
    device = NVMMDevice(env, cfg, 8 << 20)
    sb = Superblock.compute(device.size // 4096, journal_blocks=4)
    journal = Journal(env, device, sb, cfg)
    ctx = ExecContext(env, "t")
    data_addr = block_addr(sb.data_start)
    return env, device, journal, ctx, data_addr


def test_committed_tx_survives_recovery(setup):
    env, device, journal, ctx, addr = setup
    device.mem.write_nocache(addr, b"old-value")
    tx = journal.begin(ctx)
    journal.journaled_write(ctx, tx, addr, b"new-value")
    journal.commit(ctx, tx)
    device.crash()
    journal.recover(ctx)
    assert device.mem.read(addr, 9) == b"new-value"


def test_uncommitted_tx_rolled_back(setup):
    env, device, journal, ctx, addr = setup
    device.mem.write_nocache(addr, b"old-value")
    tx = journal.begin(ctx)
    journal.journaled_write(ctx, tx, addr, b"new-value")
    # No commit; crash loses the cached metadata write but the undo
    # entries were flushed.
    device.crash()
    assert journal.recover(ctx) == 1
    assert device.mem.read(addr, 9) == b"old-value"


def test_uncommitted_tx_with_evicted_metadata_rolled_back(setup):
    """The dangerous case: the cache evicted the new metadata before the
    commit was written.  Undo must restore the old bytes."""
    env, device, journal, ctx, addr = setup
    device.mem.write_nocache(addr, b"old-value")
    tx = journal.begin(ctx)
    journal.journaled_write(ctx, tx, addr, b"new-value")
    # Evict everything (worst case) then crash pre-commit.
    device.crash(evict_lines=device.mem.dirty_line_indices())
    journal.recover(ctx)
    assert device.mem.read(addr, 9) == b"old-value"


def test_multiple_txs_mixed_commit_states(setup):
    env, device, journal, ctx, addr = setup
    device.mem.write_nocache(addr, b"AAAA")
    device.mem.write_nocache(addr + 4096, b"BBBB")
    tx1 = journal.begin(ctx)
    journal.journaled_write(ctx, tx1, addr, b"1111")
    journal.commit(ctx, tx1)
    tx2 = journal.begin(ctx)
    journal.journaled_write(ctx, tx2, addr + 4096, b"2222")
    device.crash()
    journal.recover(ctx)
    assert device.mem.read(addr, 4) == b"1111"
    assert device.mem.read(addr + 4096, 4) == b"BBBB"


def test_large_range_splits_entries(setup):
    env, device, journal, ctx, addr = setup
    old = bytes(range(200))
    device.mem.write_nocache(addr, old)
    tx = journal.begin(ctx)
    journal.journaled_write(ctx, tx, addr, b"\xff" * 200)
    assert tx.entries == -(-200 // ENTRY_PAYLOAD_MAX)
    device.crash()
    journal.recover(ctx)
    assert device.mem.read(addr, 200) == old


def test_undo_applied_in_reverse_order(setup):
    """Two updates to the same range in one tx: rollback must restore the
    original (first-logged) value, not the intermediate one."""
    env, device, journal, ctx, addr = setup
    device.mem.write_nocache(addr, b"v0")
    tx = journal.begin(ctx)
    journal.journaled_write(ctx, tx, addr, b"v1")
    journal.journaled_write(ctx, tx, addr, b"v2")
    device.crash()
    journal.recover(ctx)
    assert device.mem.read(addr, 2) == b"v0"


def test_commit_closes_tx(setup):
    env, device, journal, ctx, addr = setup
    tx = journal.begin(ctx)
    journal.commit(ctx, tx)
    with pytest.raises(ValueError):
        journal.commit(ctx, tx)
    with pytest.raises(ValueError):
        journal.log_undo(ctx, tx, addr, 8)


def test_ring_wraps_when_full(setup):
    env, device, journal, ctx, addr = setup
    # 4 blocks * 64 slots = 256 slots; each tx = 1 undo + 1 commit.
    for i in range(400):
        tx = journal.begin(ctx)
        journal.journaled_write(ctx, tx, addr, b"%04d" % i)
        journal.commit(ctx, tx)
    assert device.mem.read(addr, 4) == b"0399"
    device.crash()
    journal.recover(ctx)
    assert device.mem.read(addr, 4) == b"0399"


def test_wrap_with_open_tx_needs_barrier(setup):
    env, device, journal, ctx, addr = setup
    hung = journal.begin(ctx)
    journal.log_undo(ctx, hung, addr, 8)
    with pytest.raises(JournalFullError):
        for i in range(400):
            tx = journal.begin(ctx)
            journal.journaled_write(ctx, tx, addr, b"%04d" % i)
            journal.commit(ctx, tx)


def test_wrap_barrier_closes_open_txs(setup):
    env, device, journal, ctx, addr = setup
    hung = journal.begin(ctx)
    journal.log_undo(ctx, hung, addr, 8)

    def barrier(bctx):
        journal.commit(bctx, hung)

    journal.wrap_barrier = barrier
    for i in range(400):
        tx = journal.begin(ctx)
        journal.journaled_write(ctx, tx, addr, b"%04d" % i)
        journal.commit(ctx, tx)
    assert not hung.open


def test_journal_costs_time(setup):
    env, device, journal, ctx, addr = setup
    before = ctx.now
    tx = journal.begin(ctx)
    journal.journaled_write(ctx, tx, addr, b"x" * 8)
    journal.commit(ctx, tx)
    # 1 undo entry flush + metadata flush + commit entry flush: >= 3 lines.
    assert ctx.now - before >= 3 * 200

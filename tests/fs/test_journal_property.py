"""Property tests for the undo journal: recovery vs a shadow model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.fs.pmfs.journal import Journal
from repro.fs.pmfs.layout import Superblock, block_addr
from repro.nvmm.config import NVMMConfig
from repro.nvmm.device import NVMMDevice


def build(journal_blocks=8):
    env = SimEnv()
    config = NVMMConfig()
    device = NVMMDevice(env, config, 8 << 20)
    sb = Superblock.compute(device.size // 4096, journal_blocks=journal_blocks)
    journal = Journal(env, device, sb, config)
    ctx = ExecContext(env, "t")
    return device, journal, ctx, block_addr(sb.data_start)


@settings(max_examples=50, deadline=None)
@given(
    txs=st.lists(
        st.tuples(
            st.booleans(),  # committed?
            st.lists(
                st.tuples(st.integers(min_value=0, max_value=40),  # slot
                          st.binary(min_size=1, max_size=24)),
                min_size=1, max_size=4,
            ),
        ),
        min_size=1,
        max_size=10,
    ),
    data=st.data(),
)
def test_recovery_restores_exactly_committed_state(txs, data):
    """Shadow model: apply committed transactions' final effects only.

    Writes target 64-byte-aligned slots (like real metadata records), so
    transactions on different slots never interleave on one cacheline;
    transactions are applied sequentially, each fully before the next,
    and the LAST tx may be left uncommitted -- the realistic single-FS
    discipline (concurrent uncommitted txs never touch the same bytes;
    ordering across them is the commit-chain's job, tested separately).
    """
    device, journal, ctx, base = build()
    shadow = {}
    open_tx = None
    for i, (committed, writes) in enumerate(txs):
        tx = journal.begin(ctx)
        staged = {}
        for slot, payload in writes:
            addr = base + slot * 64
            journal.journaled_write(ctx, tx, addr, payload)
            staged[slot] = payload
        last = i == len(txs) - 1
        if committed or not last:
            journal.commit(ctx, tx)
            shadow.update(staged)
        else:
            open_tx = tx  # crash with this one in flight
    # Possibly evict arbitrary cache lines, then crash and recover.
    dirty = device.mem.dirty_line_indices()
    evict = data.draw(st.sets(st.sampled_from(dirty)) if dirty else st.just(set()))
    device.crash(evict_lines=evict)
    journal.recover(ctx)
    for slot in range(41):
        expected = shadow.get(slot)
        if expected is None:
            continue
        assert device.mem.read(base + slot * 64, len(expected)) == expected


@settings(max_examples=30, deadline=None)
@given(n_txs=st.integers(min_value=1, max_value=120))
def test_ring_wraps_preserve_last_committed_value(n_txs):
    device, journal, ctx, base = build(journal_blocks=2)
    for i in range(n_txs):
        tx = journal.begin(ctx)
        journal.journaled_write(ctx, tx, base, b"%06d" % i)
        journal.commit(ctx, tx)
    device.crash()
    journal.recover(ctx)
    assert device.mem.read(base, 6) == b"%06d" % (n_txs - 1)

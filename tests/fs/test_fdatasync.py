"""fdatasync(2) and O_DSYNC: data durability without the metadata bill.

The counters tell the two calls apart: a pure overwrite followed by
fdatasync flushes the data but skips the inode-block write and (on the
journaling stacks) the jbd2 commit that the same workload's fsync pays;
an *extending* write dirties the size, which fdatasync must still make
durable, so there it commits like fsync.
"""

import pytest

from repro.bench.runner import build_stack
from repro.engine.context import ExecContext
from repro.engine.env import SimEnv
from repro.fs import flags as f
from repro.nvmm.config import NVMMConfig


class Rig:
    def __init__(self, fs_name):
        self.env = SimEnv()
        self.config = NVMMConfig()
        self.fs, self.vfs = build_stack(self.env, fs_name, self.config,
                                        48 << 20)
        self.ctx = ExecContext(self.env, "fdatasync-test")

    def count(self, name):
        return self.env.stats.count(name)

    def settled_file(self, path="/f", size=8192):
        """A file whose size and metadata are already durable."""
        fd = self.vfs.open(self.ctx, path, f.O_CREAT | f.O_RDWR)
        self.vfs.pwrite(self.ctx, fd, 0, b"s" * size)
        self.vfs.fsync(self.ctx, fd)
        return fd


@pytest.mark.parametrize("fs_name", ["ext4-nvmmbd", "ext4-dax"])
def test_fdatasync_overwrite_skips_the_jbd2_commit(fs_name):
    rig = Rig(fs_name)
    fd = rig.settled_file()
    commits = rig.count("jbd2_commits")
    rig.vfs.pwrite(rig.ctx, fd, 0, b"o" * 4096)  # pure overwrite
    rig.vfs.fdatasync(rig.ctx, fd)
    assert rig.count("jbd2_commits") == commits
    # The same sequence with fsync commits.
    rig.vfs.pwrite(rig.ctx, fd, 0, b"p" * 4096)
    rig.vfs.fsync(rig.ctx, fd)
    assert rig.count("jbd2_commits") == commits + 1


@pytest.mark.parametrize("fs_name", ["ext4-nvmmbd", "ext4-dax"])
def test_fdatasync_extending_write_still_commits(fs_name):
    rig = Rig(fs_name)
    fd = rig.settled_file(size=4096)
    commits = rig.count("jbd2_commits")
    rig.vfs.pwrite(rig.ctx, fd, 4096, b"e" * 4096)  # grows the file
    rig.vfs.fdatasync(rig.ctx, fd)
    assert rig.count("jbd2_commits") == commits + 1
    # ... exactly once: the size is durable now, so a second
    # overwrite+fdatasync round is commit-free again.
    rig.vfs.pwrite(rig.ctx, fd, 0, b"o" * 4096)
    rig.vfs.fdatasync(rig.ctx, fd)
    assert rig.count("jbd2_commits") == commits + 1


def test_ext2_fdatasync_overwrite_skips_the_inode_block_write():
    rig = Rig("ext2-nvmmbd")
    fd = rig.settled_file()
    ino = rig.vfs.fstat(rig.ctx, fd).ino
    meta = rig.count("meta_block_writes")
    rig.vfs.pwrite(rig.ctx, fd, 0, b"o" * 4096)
    rig.vfs.fdatasync(rig.ctx, fd)
    assert rig.count("meta_block_writes") == meta
    assert rig.count("ext2_fdatasyncs") == 1
    # The data itself did reach the device: no dirty pages remain.
    assert list(rig.fs.cache.dirty_pages_of(ino)) == []
    # fsync on the same state writes the inode block.
    rig.vfs.pwrite(rig.ctx, fd, 0, b"p" * 4096)
    rig.vfs.fsync(rig.ctx, fd)
    assert rig.count("meta_block_writes") == meta + 1


def test_hinfs_fdatasync_flushes_data_but_skips_sync_bookkeeping():
    rig = Rig("hinfs")
    # A fresh file: the Benefit Model buffers first-touch writes.
    fd = rig.vfs.open(rig.ctx, "/lazy", f.O_CREAT | f.O_RDWR)
    ino = rig.vfs.fstat(rig.ctx, fd).ino
    rig.vfs.pwrite(rig.ctx, fd, 0, b"o" * 4096)
    assert list(rig.fs.buffer.file_blocks(ino))
    rig.vfs.fdatasync(rig.ctx, fd)
    # Buffered data reached NVMM...
    assert not list(rig.fs.buffer.file_blocks(ino))
    # ... under the fdatasync counter, not the fsync one.
    assert rig.count("hinfs_fdatasyncs") == 1
    assert rig.count("hinfs_fsyncs") == 0


def test_pmfs_fdatasync_is_an_ordering_point_like_fsync():
    rig = Rig("pmfs")
    fd = rig.settled_file()
    before = rig.ctx.now
    rig.vfs.fdatasync(rig.ctx, fd)
    # Data is always durable on PMFS; both calls cost entry + fence.
    fdatasync_ns = rig.ctx.now - before
    before = rig.ctx.now
    rig.vfs.fsync(rig.ctx, fd)
    assert rig.ctx.now - before == fdatasync_ns


def test_o_dsync_writes_are_eager_but_commit_free_on_overwrite():
    rig = Rig("ext4-nvmmbd")
    rig.settled_file()
    fd = rig.vfs.open(rig.ctx, "/f", f.O_RDWR | f.O_DSYNC)
    commits = rig.count("jbd2_commits")
    rig.vfs.pwrite(rig.ctx, fd, 0, b"d" * 4096)
    # Eager: the bytes count as fsynced the moment the write returns.
    assert rig.count("app_bytes_fsynced") >= 4096
    assert rig.count("jbd2_commits") == commits
    # Extending O_DSYNC writes must still commit the new size.
    rig.vfs.pwrite(rig.ctx, fd, 8192, b"e" * 4096)
    assert rig.count("jbd2_commits") == commits + 1


def test_o_sync_still_commits_every_write():
    rig = Rig("ext4-nvmmbd")
    rig.settled_file()
    fd = rig.vfs.open(rig.ctx, "/f", f.O_RDWR | f.O_SYNC)
    commits = rig.count("jbd2_commits")
    rig.vfs.pwrite(rig.ctx, fd, 0, b"s" * 4096)
    assert rig.count("jbd2_commits") == commits + 1


def test_fdatasync_reports_deferred_writeback_errors():
    """fdatasync is an error-reporting point exactly like fsync."""
    from repro.fs.errors import MediaError

    rig = Rig("hinfs")
    fd = rig.settled_file()
    ino = rig.vfs.fstat(rig.ctx, fd).ino
    rig.fs.note_wb_error(ino)
    with pytest.raises(MediaError):
        rig.vfs.fdatasync(rig.ctx, fd)
    # Reported exactly once per descriptor (errseq semantics).
    rig.vfs.fdatasync(rig.ctx, fd)

"""Unit tests for the on-NVMM layout (superblock, inode packing)."""

import pytest

from repro.fs.pmfs.inodes import CORE_SIZE, POINTER_SIZE, PmfsInode
from repro.fs.pmfs.layout import (
    INODE_SIZE,
    INODES_PER_BLOCK,
    KIND_DIR,
    KIND_FILE,
    MAX_FILE_BLOCKS,
    N_DIRECT,
    PTRS_PER_BLOCK,
    Superblock,
    block_addr,
    inode_addr,
)


def test_superblock_roundtrip():
    sb = Superblock.compute(total_blocks=10_000)
    parsed = Superblock.unpack(sb.pack())
    for field in ("total_blocks", "journal_start", "journal_blocks",
                  "inode_table_start", "inode_count", "data_start"):
        assert getattr(parsed, field) == getattr(sb, field)


def test_superblock_bad_magic_rejected():
    with pytest.raises(ValueError):
        Superblock.unpack(b"\0" * 64)


def test_superblock_layout_ordering():
    sb = Superblock.compute(total_blocks=10_000, journal_blocks=32)
    assert sb.journal_start == 1
    assert sb.inode_table_start == 1 + 32
    assert sb.data_start > sb.inode_table_start
    assert sb.data_start < sb.total_blocks


def test_superblock_too_small_device():
    with pytest.raises(ValueError):
        Superblock.compute(total_blocks=10)


def test_inode_addressing():
    sb = Superblock.compute(total_blocks=10_000)
    base = block_addr(sb.inode_table_start)
    assert inode_addr(sb, 1) == base
    assert inode_addr(sb, 2) == base + INODE_SIZE
    assert inode_addr(sb, INODES_PER_BLOCK + 1) == base + 4096
    with pytest.raises(ValueError):
        inode_addr(sb, 0)
    with pytest.raises(ValueError):
        inode_addr(sb, sb.inode_count + 1)


def test_inode_pack_unpack_roundtrip():
    inode = PmfsInode(5)
    inode.kind = KIND_FILE
    inode.nlink = 1
    inode.size = 123_456
    inode.mtime = 42
    inode.ctime = 43
    inode.last_sync = 44
    inode.direct = list(range(100, 100 + N_DIRECT))
    inode.indirect = 777
    inode.dindirect = 888
    raw = inode.pack_core() + inode.pack_pointers()
    parsed = PmfsInode.unpack(5, raw)
    assert parsed.kind == KIND_FILE
    assert parsed.size == 123_456
    assert parsed.last_sync == 44
    assert parsed.direct == inode.direct
    assert parsed.indirect == 777
    assert parsed.dindirect == 888


def test_core_fits_one_cacheline():
    # The core (kind/nlink/size/times) must be journal-able in one entry
    # region and the whole struct in the 256-byte slot.
    assert CORE_SIZE == 40
    assert CORE_SIZE + POINTER_SIZE <= INODE_SIZE


def test_max_file_size_is_generous():
    # direct + indirect + double indirect at 4 KiB blocks: >= 1 GiB.
    assert MAX_FILE_BLOCKS * 4096 >= 1 << 30
    assert MAX_FILE_BLOCKS == N_DIRECT + PTRS_PER_BLOCK + PTRS_PER_BLOCK ** 2


def test_dir_kind_distinct():
    assert KIND_DIR != KIND_FILE != 0

"""Tests for the QoS layer: token buckets, admission control, overload
observability -- including the two Hypothesis properties the design
document pins down (bucket admission bound, weighted-fairness spread)."""

import types

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.runner import run_workload
from repro.engine.env import SimEnv
from repro.engine.stats import fairness_spread, jain_index
from repro.fs.errors import TryAgain
from repro.fs.health import MountHealth, OVERLOADED, HEALTHY
from repro.fs.qos import (
    PRIO_BRONZE,
    PRIO_GOLD,
    PRIO_SILVER,
    QosController,
    TokenBucket,
    _SCALE,
)
from repro.workloads.tenants import MODE_OPEN, TenantFleet, TenantSpec


def _req(tenant, nbytes=4096):
    return types.SimpleNamespace(tenant=tenant, total_bytes=nbytes)


class _FakeBuffer:
    def __init__(self, used, total):
        self.used_blocks = used
        self.blocks_total = total


class _Ctx:
    """Minimal ExecContext stand-in for controller unit tests."""

    def __init__(self, now=0):
        self.now = now

    def charge(self, ns, category=None):
        if ns > 0:
            self.now += ns

    def layer(self, name):
        import contextlib
        return contextlib.nullcontext()


# -- TokenBucket -----------------------------------------------------------

def test_bucket_validates_knobs():
    with pytest.raises(ValueError):
        TokenBucket(0, 10)
    with pytest.raises(ValueError):
        TokenBucket(10, -1)
    with pytest.raises(ValueError):
        TokenBucket(100, 100).take(0, -5)


def test_bucket_burst_then_exact_debt_wait():
    # 1000 B/s, 100 B burst: the burst is free, the next 50 B wait
    # exactly 50/1000 s = 50 ms of virtual time.
    bucket = TokenBucket(1000, 100)
    assert bucket.take(0, 100) == 0
    assert bucket.take(0, 50) == 50_000_000
    # After the wait the debt is exactly paid: one more byte waits 1 ms.
    assert bucket.take(50_000_000, 1) == 1_000_000


def test_bucket_refill_caps_at_burst():
    bucket = TokenBucket(1000, 100)
    bucket.take(0, 100)
    # A long idle refills to the cap, not beyond.
    assert bucket.peek_tokens(10**12) == 100


def test_bucket_is_deterministic():
    def run_once():
        bucket = TokenBucket(12345, 4096)
        return [bucket.take(t * 1000, 512) for t in range(64)]

    assert run_once() == run_once()


@settings(max_examples=60)
@given(
    rate=st.integers(min_value=1, max_value=10**10),
    burst=st.integers(min_value=0, max_value=1 << 20),
    arrivals=st.lists(
        st.tuples(st.integers(min_value=0, max_value=10**7),   # gap ns
                  st.integers(min_value=0, max_value=1 << 16)),  # bytes
        min_size=1, max_size=64,
    ),
)
def test_bucket_never_admits_more_than_rate_window_plus_burst(
        rate, burst, arrivals):
    """The ISSUE's admission bound: over any window from t=0, admitted
    bytes never exceed rate x window + burst, for any arrival sequence.

    The client blocks for the returned wait (as ``QosController.admit``
    charges it), so the next take happens no earlier than the previous
    admission instant.
    """
    bucket = TokenBucket(rate, burst)
    now = 0
    admitted_bytes = 0
    for gap, nbytes in arrivals:
        now += gap
        wait = bucket.take(now, nbytes)
        assert wait >= 0
        now += wait
        admitted_bytes += nbytes
        # Exact integer bound in token units: everything admitted by
        # virtual time ``now`` fits in the initial burst plus accrual.
        assert admitted_bytes * _SCALE <= burst * _SCALE + rate * now


# -- QosController ---------------------------------------------------------

def test_controller_validates_knobs():
    env = SimEnv()
    with pytest.raises(ValueError):
        QosController(env, 0)
    with pytest.raises(ValueError):
        QosController(env, 100, high_watermark=0.5, low_watermark=0.8)
    qos = QosController(env, 100)
    with pytest.raises(ValueError):
        qos.register("t", weight=0)
    qos.register("t")
    with pytest.raises(ValueError):
        qos.register("t")  # duplicate


def test_weighted_shares_rebalance_on_registration():
    qos = QosController(SimEnv(), 1000)
    a = qos.register("a", weight=1)
    assert a.bucket.rate_bps == 1000
    b = qos.register("b", weight=3)
    assert a.bucket.rate_bps == 250
    assert b.bucket.rate_bps == 750


def test_untenanted_and_unregistered_traffic_bypasses():
    qos = QosController(SimEnv(), 1)  # 1 B/s: would throttle anything
    ctx = _Ctx()
    qos.admit(ctx, _req(None, 1 << 20))
    qos.admit(ctx, _req("ghost", 1 << 20))
    assert ctx.now == 0  # no wait charged, no shed


def test_throttle_wait_is_charged_and_counted():
    env = SimEnv()
    qos = QosController(env, 1000, default_burst_bytes=0)
    state = qos.register("t")
    ctx = _Ctx()
    qos.admit(ctx, _req("t", 500))
    assert ctx.now == 500_000_000  # 500 B at 1000 B/s
    assert state.throttle_ns == 500_000_000
    assert env.stats.count("qos_throttle_ns") == 500_000_000
    assert env.stats.count("qos_admitted_ops") == 1
    assert env.stats.count("qos_admitted_bytes") == 500


def test_overload_sheds_only_shed_class_with_hysteresis():
    env = SimEnv()
    buffer = _FakeBuffer(used=0, total=100)
    qos = QosController(env, 1 << 30, buffer=buffer,
                        high_watermark=0.85, low_watermark=0.60)
    qos.register("low", priority=PRIO_BRONZE)
    qos.register("mid", priority=PRIO_SILVER)
    qos.register("high", priority=PRIO_GOLD)
    ctx = _Ctx()
    # Below the high watermark: everyone admitted.
    buffer.used_blocks = 84
    qos.admit(ctx, _req("low"))
    # Crossing it: bronze shed, silver/gold pass.
    buffer.used_blocks = 90
    with pytest.raises(TryAgain):
        qos.admit(ctx, _req("low"))
    qos.admit(ctx, _req("mid"))
    qos.admit(ctx, _req("high"))
    # Hysteresis: between low and high watermarks, still overloaded.
    buffer.used_blocks = 70
    with pytest.raises(TryAgain):
        qos.admit(ctx, _req("low"))
    # Below the low watermark: overload exits, bronze admitted again.
    buffer.used_blocks = 10
    qos.admit(ctx, _req("low"))
    assert env.stats.count("qos_overload_enters") == 1
    assert env.stats.count("qos_overload_exits") == 1
    assert env.stats.count("qos_shed_ops") == 2
    assert env.stats.count("qos_shed_ops_prio_%d" % PRIO_BRONZE) == 2
    assert qos.tenant("low").shed_ops == 2


def test_overload_feeds_health_observable():
    env = SimEnv()
    health = MountHealth(env)
    buffer = _FakeBuffer(used=0, total=100)
    qos = QosController(env, 1 << 30, buffer=buffer, health=health)
    qos.register("low", priority=PRIO_BRONZE)
    ctx = _Ctx(now=5)
    buffer.used_blocks = 95
    with pytest.raises(TryAgain):
        qos.admit(ctx, _req("low"))
    assert health.overloaded
    assert health.observable_state == OVERLOADED
    assert health.state == HEALTHY  # the FSM proper never moved
    buffer.used_blocks = 0
    qos.admit(ctx, _req("low"))
    assert not health.overloaded
    assert health.observable_state == HEALTHY
    assert [active for _at, active, _why in health.overload_history] \
        == [True, False]


# -- weighted fairness on the full stack -----------------------------------

@settings(max_examples=6, deadline=None)
@given(n_tenants=st.integers(min_value=2, max_value=8),
       seed=st.integers(min_value=0, max_value=2**16))
def test_equal_weight_tenants_share_capacity_fairly(n_tenants, seed):
    """The ISSUE's fairness property: 2-8 equal-weight tenants writing
    disjoint files under a binding aggregate capacity end a fixed window
    with byte shares spread within a small bound of each other."""
    specs = [
        TenantSpec(tid, weight=1, priority=PRIO_SILVER, mode=MODE_OPEN,
                   ops=4000, io_size=4096, read_fraction=0.0,
                   interval_ns=20_000)
        for tid in range(n_tenants)
    ]
    fleet = TenantFleet(specs, seed=seed)
    holder = []

    def setup(env, fs, vfs):
        qos = QosController(env, 64 << 20)  # binding: demand is ~200 MB/s
        vfs.attach_qos(qos)
        fleet.register_all(qos)
        holder.append(qos)

    run_workload("hinfs", fleet, device_size=64 << 20, setup=setup,
                 duration_ns=30_000_000)
    shares = [fleet.results[s.tenant_id].bytes_done for s in specs]
    assert all(share > 0 for share in shares)
    assert fairness_spread(shares) <= 1.5, shares
    assert jain_index(shares) >= 0.95, shares

"""Unit tests for flat memory regions."""

import pytest

from repro.mem.region import MemoryRegion


def test_region_starts_zeroed():
    region = MemoryRegion(64)
    assert region.read(0, 64) == b"\0" * 64


def test_write_then_read_roundtrip():
    region = MemoryRegion(128)
    region.write(10, b"hello")
    assert region.read(10, 5) == b"hello"
    assert region.read(9, 1) == b"\0"


def test_out_of_bounds_read_rejected():
    region = MemoryRegion(16)
    with pytest.raises(IndexError):
        region.read(10, 10)


def test_out_of_bounds_write_rejected():
    region = MemoryRegion(16)
    with pytest.raises(IndexError):
        region.write(14, b"abcd")


def test_negative_address_rejected():
    region = MemoryRegion(16)
    with pytest.raises(IndexError):
        region.read(-1, 4)


def test_zero_size_rejected():
    with pytest.raises(ValueError):
        MemoryRegion(0)


def test_fill():
    region = MemoryRegion(32)
    region.fill(8, 4, 0xAB)
    assert region.read(8, 4) == b"\xab" * 4
    assert region.read(7, 1) == b"\0"


def test_snapshot_is_independent():
    region = MemoryRegion(8)
    snap = region.snapshot()
    region.write(0, b"x")
    assert snap == b"\0" * 8


def test_len():
    assert len(MemoryRegion(100)) == 100

"""Unit and property tests for the CPU-cache / persistence-domain model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.cpucache import CachedPersistentRegion
from repro.mem.region import CACHELINE_SIZE


def test_cached_write_visible_to_reads():
    region = CachedPersistentRegion(256)
    region.write(10, b"abc")
    assert region.read(10, 3) == b"abc"


def test_cached_write_lost_on_crash():
    region = CachedPersistentRegion(256)
    region.write(10, b"abc")
    region.crash()
    assert region.read(10, 3) == b"\0\0\0"


def test_clflush_makes_write_durable():
    region = CachedPersistentRegion(256)
    region.write(10, b"abc")
    region.clflush(10, 3)
    region.crash()
    assert region.read(10, 3) == b"abc"


def test_nocache_write_is_immediately_durable():
    region = CachedPersistentRegion(256)
    region.write_nocache(0, b"persist")
    region.crash()
    assert region.read(0, 7) == b"persist"


def test_nocache_write_invalidates_stale_cached_lines():
    region = CachedPersistentRegion(256)
    region.write(0, b"old")
    region.write_nocache(0, b"new")
    assert region.read(0, 3) == b"new"
    region.crash()
    assert region.read(0, 3) == b"new"


def test_crash_line_granularity_all_or_nothing():
    region = CachedPersistentRegion(256)
    # Two writes to the same line: both lost together.
    region.write(0, b"a")
    region.write(32, b"b")
    region.crash()
    assert region.read(0, 1) == b"\0"
    assert region.read(32, 1) == b"\0"


def test_crash_with_eviction_persists_chosen_lines():
    region = CachedPersistentRegion(256)
    region.write(0, b"line0")
    region.write(CACHELINE_SIZE, b"line1")
    region.crash(evict_lines=[1])
    assert region.read(0, 5) == b"\0" * 5
    assert region.read(CACHELINE_SIZE, 5) == b"line1"


def test_clflush_counts_only_dirty_lines():
    region = CachedPersistentRegion(512)
    region.write(0, b"x" * 100)  # lines 0 and 1
    assert region.clflush(0, 512) == 2
    assert region.clflush(0, 512) == 0  # already clean


def test_write_spanning_lines():
    region = CachedPersistentRegion(512)
    payload = bytes(range(150))
    region.write(60, payload)
    assert region.read(60, 150) == payload
    assert set(region.dirty_line_indices()) == {0, 1, 2, 3}


def test_flush_all():
    region = CachedPersistentRegion(512)
    region.write(0, b"a")
    region.write(200, b"b")
    assert region.flush_all() == 2
    region.crash()
    assert region.read(0, 1) == b"a"
    assert region.read(200, 1) == b"b"


def test_read_merges_cache_and_persistence():
    region = CachedPersistentRegion(256)
    region.write_nocache(0, b"AAAABBBB")
    region.write(4, b"bbbb")  # cached overlay on the second half
    assert region.read(0, 8) == b"AAAAbbbb"


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["write", "write_nocache", "clflush"]),
            st.integers(min_value=0, max_value=255),
            st.binary(min_size=1, max_size=80),
        ),
        max_size=25,
    )
)
def test_read_always_sees_newest_data(ops):
    """Reads must merge cache and persistence exactly like a shadow model."""
    region = CachedPersistentRegion(512)
    shadow = bytearray(512)
    for kind, addr, data in ops:
        if addr + len(data) > 512:
            data = data[: 512 - addr]
            if not data:
                continue
        if kind == "write":
            region.write(addr, data)
            shadow[addr : addr + len(data)] = data
        elif kind == "write_nocache":
            region.write_nocache(addr, data)
            shadow[addr : addr + len(data)] = data
        else:
            region.clflush(addr, len(data))
    assert region.read(0, 512) == bytes(shadow)


@settings(max_examples=60, deadline=None)
@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=255),
            st.binary(min_size=1, max_size=64),
        ),
        max_size=12,
    ),
    data=st.data(),
)
def test_crash_state_is_union_of_persisted_and_evicted_lines(writes, data):
    """After a crash, each line is either its flushed state or its old state."""
    region = CachedPersistentRegion(512)
    for addr, payload in writes:
        if addr + len(payload) > 512:
            payload = payload[: 512 - addr]
            if not payload:
                continue
        region.write(addr, payload)
    before_crash = region.read(0, 512)
    persistent_only = region.persistent_snapshot()
    dirty = region.dirty_line_indices()
    evict = data.draw(st.sets(st.sampled_from(dirty)) if dirty else st.just(set()))
    region.crash(evict_lines=evict)
    after = region.read(0, 512)
    for line in range(512 // CACHELINE_SIZE):
        lo, hi = line * CACHELINE_SIZE, (line + 1) * CACHELINE_SIZE
        if line in evict:
            assert after[lo:hi] == before_crash[lo:hi]
        else:
            assert after[lo:hi] == persistent_only[lo:hi]


def test_crash_rejects_out_of_range_eviction():
    region = CachedPersistentRegion(512)
    with pytest.raises(ValueError):
        region.crash(evict_lines=[region.num_lines])
    with pytest.raises(ValueError):
        region.crash(evict_lines=[-1])


def test_crash_rejects_clean_line_eviction():
    region = CachedPersistentRegion(512)
    region.write(0, b"a")
    region.clflush(0, 1)
    # Line 0 is clean: "evicting" it would silently assert nothing.
    with pytest.raises(ValueError):
        region.crash(evict_lines=[0])


def test_crash_accepts_dirty_line_eviction():
    region = CachedPersistentRegion(512)
    region.write(CACHELINE_SIZE, b"zz")
    region.crash(evict_lines=[1])
    assert region.read(CACHELINE_SIZE, 2) == b"zz"


def test_load_snapshot_rejects_size_mismatch():
    region = CachedPersistentRegion(512)
    with pytest.raises(ValueError):
        region.load_snapshot(b"\0" * 100)
